//! SLO metrics: per-request latency records, percentile summaries, and
//! goodput under a latency SLO.
//!
//! Serving systems are judged on *tail* latency against arrival time, not on
//! batch makespan: TTFT (time to first token), TPOT (time per output token
//! after the first), and E2E (arrival to last token). Goodput counts only the
//! requests whose TTFT and TPOT both meet the SLO — the standard lens for
//! throughput-vs-latency curves.

/// Lifecycle of one request as observed by the serving engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Request id (trace index).
    pub id: usize,
    /// Wafer (replica) the router assigned the request to.
    pub wafer: usize,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Decode length in tokens.
    pub decode_len: usize,
    /// Arrival time (seconds since experiment start).
    pub arrival_s: f64,
    /// **First** admission into the KV cache (NaN if never admitted).
    /// Deliberately not updated on re-admission after an eviction: the
    /// first-admission stamp keeps `admitted_s − arrival_s` meaning "time
    /// to first service". Queueing delay accumulated *after* an eviction is
    /// accounted separately in `queue_wait_s`, so post-eviction waits are
    /// never misattributed to service time.
    pub admitted_s: f64,
    /// Total time spent admissible-but-waiting in the engine queue, summed
    /// over every admission (the initial wait plus each post-eviction
    /// re-admission wait). Migration transit of imported KV is excluded —
    /// a request only waits once its KV has landed.
    pub queue_wait_s: f64,
    /// Emission time of the first decode token (NaN if none emitted).
    pub first_token_s: f64,
    /// Completion time of the last decode token (NaN if unfinished at the
    /// horizon).
    pub completed_s: f64,
    /// Times this request was evicted and had its KV recomputed.
    pub evictions: u32,
    /// Prompt tokens served from the shared-prefix KV cache at the most
    /// recent admission (their prefill was skipped).
    pub cached_prefix_tokens: usize,
    /// The request's shared-prefix tag, carried through the lifecycle so
    /// re-admissions, routing, and cross-wafer migration stay prefix-aware.
    pub shared_prefix: Option<ouro_workload::SharedPrefix>,
}

impl RequestRecord {
    /// Time to first token, if one was emitted.
    pub fn ttft_s(&self) -> Option<f64> {
        finite(self.first_token_s - self.arrival_s)
    }

    /// Mean time per output token after the first, if the request completed.
    /// Requests with a single output token report a TPOT of zero.
    pub fn tpot_s(&self) -> Option<f64> {
        if !self.completed_s.is_finite() || !self.first_token_s.is_finite() {
            return None;
        }
        if self.decode_len <= 1 {
            return Some(0.0);
        }
        finite((self.completed_s - self.first_token_s) / (self.decode_len - 1) as f64)
    }

    /// End-to-end latency, if the request completed.
    pub fn e2e_s(&self) -> Option<f64> {
        finite(self.completed_s - self.arrival_s)
    }

    /// Whether the request finished before the horizon.
    pub fn completed(&self) -> bool {
        self.completed_s.is_finite()
    }

    /// Whether a completed request met both sides of the SLO.
    pub fn meets_slo(&self, slo: &SloConfig) -> bool {
        match (self.ttft_s(), self.tpot_s()) {
            (Some(ttft), Some(tpot)) => ttft <= slo.ttft_s && tpot <= slo.tpot_s,
            _ => false,
        }
    }
}

fn finite(x: f64) -> Option<f64> {
    x.is_finite().then_some(x)
}

/// A latency service-level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Maximum acceptable time to first token.
    pub ttft_s: f64,
    /// Maximum acceptable time per output token.
    pub tpot_s: f64,
}

impl SloConfig {
    /// An SLO scaled from the hardware's unloaded latencies: `slack`× the
    /// ideal TTFT and TPOT. `slack` of 5–10 is typical for interactive
    /// serving.
    pub fn with_slack(ideal_ttft_s: f64, ideal_tpot_s: f64, slack: f64) -> SloConfig {
        SloConfig { ttft_s: ideal_ttft_s * slack, tpot_s: ideal_tpot_s * slack }
    }
}

/// p50/p95/p99 summary of one latency dimension.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of samples summarised.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Maximum.
    pub max_s: f64,
}

impl LatencyStats {
    /// Summarises a set of samples. Total on every input: an empty vector
    /// yields the all-zero summary, and non-finite samples (NaN/±inf, which
    /// a partial-comparison sort would panic on) are dropped before
    /// summarising, so the result is always NaN-free.
    pub fn from_samples(samples: Vec<f64>) -> LatencyStats {
        let mut samples: Vec<f64> = samples.into_iter().filter(|s| s.is_finite()).collect();
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(f64::total_cmp);
        let count = samples.len();
        let mean_s = samples.iter().sum::<f64>() / count as f64;
        LatencyStats {
            count,
            mean_s,
            p50_s: percentile_sorted(&samples, 50.0),
            p95_s: percentile_sorted(&samples, 95.0),
            p99_s: percentile_sorted(&samples, 99.0),
            max_s: samples[count - 1],
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// element with at least `pct` percent of the samples at or below it.
/// Total for every `pct` (clamped into `[0, 100]`) and every length —
/// `rank = ceil(pct/100 · N)` is clamped into `[1, N]`, so N = 1 returns
/// the lone sample for every percentile, N = 2 splits at p50, and p → 100
/// saturates at the maximum rather than indexing past the end.
fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pct = pct.clamp(0.0, 100.0);
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Offered load in requests per second (`None` for closed loop).
    pub offered_rps: Option<f64>,
    /// Requests injected into the cluster.
    pub injected: usize,
    /// Requests completed before the horizon.
    pub completed: usize,
    /// Requests still queued (never admitted) at the horizon.
    pub queued_at_horizon: usize,
    /// Requests admitted but unfinished at the horizon.
    pub in_flight_at_horizon: usize,
    /// Requests dropped because their prompt alone exceeds the cache.
    pub dropped: usize,
    /// Total evictions across the run.
    pub evictions: u64,
    /// Tokens actually charged as prefill/recompute work across the run.
    pub prefilled_tokens: u64,
    /// Prompt tokens served from the shared-prefix KV cache (prefill
    /// skipped) across the run.
    pub cached_prefix_tokens: u64,
    /// Wall-clock span of the run (first arrival to last event).
    pub duration_s: f64,
    /// Completed requests per second.
    pub achieved_rps: f64,
    /// Output tokens per second across completed requests.
    pub output_tokens_per_s: f64,
    /// Completed requests per second that met the SLO.
    pub goodput_rps: f64,
    /// Fraction of *injected* requests that completed within the SLO.
    pub slo_attainment: f64,
    /// Time to first token distribution over requests that emitted one.
    pub ttft: LatencyStats,
    /// Time per output token distribution over completed requests.
    pub tpot: LatencyStats,
    /// End-to-end latency distribution over completed requests.
    pub e2e: LatencyStats,
    /// Mean fraction of wafer-time spent with at least one token in flight.
    pub utilization: f64,
}

/// Cluster-level counters that accompany the per-request records when
/// assembling a [`ServingReport`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunTotals {
    /// Requests still queued (never admitted) at the horizon.
    pub queued_at_horizon: usize,
    /// Requests admitted but unfinished at the horizon.
    pub in_flight_at_horizon: usize,
    /// Requests dropped because their prompt alone exceeds the cache.
    pub dropped: usize,
    /// Total evictions across the run.
    pub evictions: u64,
    /// Tokens actually charged as prefill/recompute work across the run.
    pub prefilled_tokens: u64,
    /// Prompt tokens served from the shared-prefix KV cache across the run.
    pub cached_prefix_tokens: u64,
    /// Wall-clock span of the run.
    pub duration_s: f64,
    /// Mean fraction of wafer-time spent with at least one token in flight.
    pub utilization: f64,
}

impl ServingReport {
    /// Builds the report from raw records plus engine-level counters.
    pub fn from_records(
        records: &[RequestRecord],
        slo: &SloConfig,
        offered_rps: Option<f64>,
        totals: RunTotals,
    ) -> ServingReport {
        let injected = records.len();
        let completed: Vec<&RequestRecord> = records.iter().filter(|r| r.completed()).collect();
        let met = completed.iter().filter(|r| r.meets_slo(slo)).count();
        let out_tokens: u64 = completed.iter().map(|r| r.decode_len as u64).sum();
        let span = totals.duration_s.max(1e-12);
        ServingReport {
            offered_rps,
            injected,
            completed: completed.len(),
            queued_at_horizon: totals.queued_at_horizon,
            in_flight_at_horizon: totals.in_flight_at_horizon,
            dropped: totals.dropped,
            evictions: totals.evictions,
            prefilled_tokens: totals.prefilled_tokens,
            cached_prefix_tokens: totals.cached_prefix_tokens,
            duration_s: totals.duration_s,
            achieved_rps: completed.len() as f64 / span,
            output_tokens_per_s: out_tokens as f64 / span,
            goodput_rps: met as f64 / span,
            slo_attainment: if injected == 0 { 0.0 } else { met as f64 / injected as f64 },
            ttft: LatencyStats::from_samples(records.iter().filter_map(RequestRecord::ttft_s).collect()),
            tpot: LatencyStats::from_samples(records.iter().filter_map(RequestRecord::tpot_s).collect()),
            e2e: LatencyStats::from_samples(records.iter().filter_map(RequestRecord::e2e_s).collect()),
            utilization: totals.utilization,
        }
    }

    /// Conservation check: every injected request is accounted for exactly
    /// once as completed, queued, in flight, or dropped.
    pub fn is_conserved(&self) -> bool {
        self.injected == self.completed + self.queued_at_horizon + self.in_flight_at_horizon + self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(arrival: f64, first: f64, done: f64, decode: usize) -> RequestRecord {
        RequestRecord {
            id: 0,
            wafer: 0,
            prompt_len: 32,
            decode_len: decode,
            arrival_s: arrival,
            admitted_s: arrival,
            queue_wait_s: 0.0,
            first_token_s: first,
            completed_s: done,
            evictions: 0,
            cached_prefix_tokens: 0,
            shared_prefix: None,
        }
    }

    #[test]
    fn latency_derivations() {
        let r = record(1.0, 1.5, 2.5, 11);
        assert!((r.ttft_s().unwrap() - 0.5).abs() < 1e-12);
        assert!((r.tpot_s().unwrap() - 0.1).abs() < 1e-12);
        assert!((r.e2e_s().unwrap() - 1.5).abs() < 1e-12);
        assert!(r.completed());
    }

    #[test]
    fn unfinished_requests_have_no_latencies() {
        let r = record(1.0, f64::NAN, f64::NAN, 10);
        assert_eq!(r.ttft_s(), None);
        assert_eq!(r.tpot_s(), None);
        assert_eq!(r.e2e_s(), None);
        assert!(!r.completed());
        assert!(!r.meets_slo(&SloConfig { ttft_s: 1e9, tpot_s: 1e9 }));
    }

    #[test]
    fn single_token_requests_have_zero_tpot() {
        let r = record(0.0, 0.5, 0.5, 1);
        assert_eq!(r.tpot_s(), Some(0.0));
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from_samples(samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::from_samples(vec![]);
        assert_eq!(s, LatencyStats::default());
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_s, 0.0);
        assert!(!s.mean_s.is_nan() && !s.max_s.is_nan(), "the empty summary is NaN-free");
    }

    #[test]
    fn non_finite_samples_are_dropped_not_panicked_on() {
        let s = LatencyStats::from_samples(vec![f64::NAN, 1.0, f64::INFINITY, 3.0, f64::NEG_INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.p50_s, 1.0);
        assert_eq!(s.max_s, 3.0);
        assert!((s.mean_s - 2.0).abs() < 1e-12);
        // All-NaN input degrades to the empty summary.
        assert_eq!(LatencyStats::from_samples(vec![f64::NAN, f64::NAN]), LatencyStats::default());
    }

    #[test]
    fn single_sample_summaries_return_the_sample_at_every_percentile() {
        let s = LatencyStats::from_samples(vec![4.2]);
        assert_eq!(s.count, 1);
        assert_eq!((s.p50_s, s.p95_s, s.p99_s, s.max_s), (4.2, 4.2, 4.2, 4.2));
        assert_eq!(s.mean_s, 4.2);
    }

    #[test]
    fn two_sample_nearest_rank_splits_at_the_median() {
        let s = LatencyStats::from_samples(vec![10.0, 2.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.p50_s, 2.0, "nearest-rank p50 of two samples is the lower one");
        assert_eq!(s.p95_s, 10.0);
        assert_eq!(s.p99_s, 10.0);
        assert_eq!(s.max_s, 10.0);
    }

    #[test]
    fn percentile_endpoints_saturate_instead_of_indexing_out_of_bounds() {
        let sorted = [1.0, 2.0, 3.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 3.0);
        // Out-of-range percentiles clamp rather than panic.
        assert_eq!(percentile_sorted(&sorted, 150.0), 3.0);
        assert_eq!(percentile_sorted(&sorted, -5.0), 1.0);
        assert_eq!(percentile_sorted(&[], 99.0), 0.0);
    }

    #[test]
    fn slo_splits_good_from_bad() {
        let slo = SloConfig { ttft_s: 1.0, tpot_s: 0.05 };
        let good = record(0.0, 0.5, 1.0, 11); // ttft 0.5, tpot 0.05
        let slow_first = record(0.0, 2.0, 2.5, 11); // ttft 2.0
        let slow_decode = record(0.0, 0.5, 3.0, 11); // tpot 0.25
        assert!(good.meets_slo(&slo));
        assert!(!slow_first.meets_slo(&slo));
        assert!(!slow_decode.meets_slo(&slo));
    }

    #[test]
    fn report_aggregates_and_conserves() {
        let slo = SloConfig { ttft_s: 1.0, tpot_s: 0.05 };
        let records =
            vec![record(0.0, 0.5, 1.0, 11), record(0.0, 2.0, 2.5, 11), record(0.5, f64::NAN, f64::NAN, 10)];
        let totals = RunTotals {
            queued_at_horizon: 0,
            in_flight_at_horizon: 1,
            dropped: 0,
            evictions: 3,
            prefilled_tokens: 96,
            cached_prefix_tokens: 0,
            duration_s: 2.5,
            utilization: 0.8,
        };
        let r = ServingReport::from_records(&records, &slo, Some(2.0), totals);
        assert_eq!(r.injected, 3);
        assert_eq!(r.completed, 2);
        assert_eq!(r.in_flight_at_horizon, 1);
        assert!(r.is_conserved());
        assert!((r.achieved_rps - 2.0 / 2.5).abs() < 1e-12);
        assert!((r.goodput_rps - 1.0 / 2.5).abs() < 1e-12);
        assert!((r.slo_attainment - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.ttft.count, 2);
        assert_eq!(r.evictions, 3);
    }

    #[test]
    fn slo_with_slack_scales_both_axes() {
        let slo = SloConfig::with_slack(0.01, 0.001, 5.0);
        assert!((slo.ttft_s - 0.05).abs() < 1e-12);
        assert!((slo.tpot_s - 0.005).abs() < 1e-12);
    }
}
