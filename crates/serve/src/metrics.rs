//! SLO metrics: per-request latency records, percentile summaries, and
//! goodput under a latency SLO.
//!
//! Serving systems are judged on *tail* latency against arrival time, not on
//! batch makespan: TTFT (time to first token), TPOT (time per output token
//! after the first), and E2E (arrival to last token). Goodput counts only the
//! requests whose TTFT and TPOT both meet the SLO — the standard lens for
//! throughput-vs-latency curves.

/// Lifecycle of one request as observed by the serving engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Request id (trace index).
    pub id: usize,
    /// Wafer (replica) the router assigned the request to.
    pub wafer: usize,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Decode length in tokens.
    pub decode_len: usize,
    /// Arrival time (seconds since experiment start).
    pub arrival_s: f64,
    /// First admission into the KV cache (NaN if never admitted).
    pub admitted_s: f64,
    /// Emission time of the first decode token (NaN if none emitted).
    pub first_token_s: f64,
    /// Completion time of the last decode token (NaN if unfinished at the
    /// horizon).
    pub completed_s: f64,
    /// Times this request was evicted and had its KV recomputed.
    pub evictions: u32,
}

impl RequestRecord {
    /// Time to first token, if one was emitted.
    pub fn ttft_s(&self) -> Option<f64> {
        finite(self.first_token_s - self.arrival_s)
    }

    /// Mean time per output token after the first, if the request completed.
    /// Requests with a single output token report a TPOT of zero.
    pub fn tpot_s(&self) -> Option<f64> {
        if !self.completed_s.is_finite() || !self.first_token_s.is_finite() {
            return None;
        }
        if self.decode_len <= 1 {
            return Some(0.0);
        }
        finite((self.completed_s - self.first_token_s) / (self.decode_len - 1) as f64)
    }

    /// End-to-end latency, if the request completed.
    pub fn e2e_s(&self) -> Option<f64> {
        finite(self.completed_s - self.arrival_s)
    }

    /// Whether the request finished before the horizon.
    pub fn completed(&self) -> bool {
        self.completed_s.is_finite()
    }

    /// Whether a completed request met both sides of the SLO.
    pub fn meets_slo(&self, slo: &SloConfig) -> bool {
        match (self.ttft_s(), self.tpot_s()) {
            (Some(ttft), Some(tpot)) => ttft <= slo.ttft_s && tpot <= slo.tpot_s,
            _ => false,
        }
    }
}

fn finite(x: f64) -> Option<f64> {
    x.is_finite().then_some(x)
}

/// A latency service-level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Maximum acceptable time to first token.
    pub ttft_s: f64,
    /// Maximum acceptable time per output token.
    pub tpot_s: f64,
}

impl SloConfig {
    /// An SLO scaled from the hardware's unloaded latencies: `slack`× the
    /// ideal TTFT and TPOT. `slack` of 5–10 is typical for interactive
    /// serving.
    pub fn with_slack(ideal_ttft_s: f64, ideal_tpot_s: f64, slack: f64) -> SloConfig {
        SloConfig { ttft_s: ideal_ttft_s * slack, tpot_s: ideal_tpot_s * slack }
    }
}

/// p50/p95/p99 summary of one latency dimension.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of samples summarised.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Maximum.
    pub max_s: f64,
}

impl LatencyStats {
    /// Summarises a set of samples (empty input yields all zeros).
    pub fn from_samples(mut samples: Vec<f64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latency samples must not be NaN"));
        let count = samples.len();
        let mean_s = samples.iter().sum::<f64>() / count as f64;
        LatencyStats {
            count,
            mean_s,
            p50_s: percentile_sorted(&samples, 50.0),
            p95_s: percentile_sorted(&samples, 95.0),
            p99_s: percentile_sorted(&samples, 99.0),
            max_s: samples[count - 1],
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Offered load in requests per second (`None` for closed loop).
    pub offered_rps: Option<f64>,
    /// Requests injected into the cluster.
    pub injected: usize,
    /// Requests completed before the horizon.
    pub completed: usize,
    /// Requests still queued (never admitted) at the horizon.
    pub queued_at_horizon: usize,
    /// Requests admitted but unfinished at the horizon.
    pub in_flight_at_horizon: usize,
    /// Requests dropped because their prompt alone exceeds the cache.
    pub dropped: usize,
    /// Total evictions across the run.
    pub evictions: u64,
    /// Wall-clock span of the run (first arrival to last event).
    pub duration_s: f64,
    /// Completed requests per second.
    pub achieved_rps: f64,
    /// Output tokens per second across completed requests.
    pub output_tokens_per_s: f64,
    /// Completed requests per second that met the SLO.
    pub goodput_rps: f64,
    /// Fraction of *injected* requests that completed within the SLO.
    pub slo_attainment: f64,
    /// Time to first token distribution over requests that emitted one.
    pub ttft: LatencyStats,
    /// Time per output token distribution over completed requests.
    pub tpot: LatencyStats,
    /// End-to-end latency distribution over completed requests.
    pub e2e: LatencyStats,
    /// Mean fraction of wafer-time spent with at least one token in flight.
    pub utilization: f64,
}

/// Cluster-level counters that accompany the per-request records when
/// assembling a [`ServingReport`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunTotals {
    /// Requests still queued (never admitted) at the horizon.
    pub queued_at_horizon: usize,
    /// Requests admitted but unfinished at the horizon.
    pub in_flight_at_horizon: usize,
    /// Requests dropped because their prompt alone exceeds the cache.
    pub dropped: usize,
    /// Total evictions across the run.
    pub evictions: u64,
    /// Wall-clock span of the run.
    pub duration_s: f64,
    /// Mean fraction of wafer-time spent with at least one token in flight.
    pub utilization: f64,
}

impl ServingReport {
    /// Builds the report from raw records plus engine-level counters.
    pub fn from_records(
        records: &[RequestRecord],
        slo: &SloConfig,
        offered_rps: Option<f64>,
        totals: RunTotals,
    ) -> ServingReport {
        let injected = records.len();
        let completed: Vec<&RequestRecord> = records.iter().filter(|r| r.completed()).collect();
        let met = completed.iter().filter(|r| r.meets_slo(slo)).count();
        let out_tokens: u64 = completed.iter().map(|r| r.decode_len as u64).sum();
        let span = totals.duration_s.max(1e-12);
        ServingReport {
            offered_rps,
            injected,
            completed: completed.len(),
            queued_at_horizon: totals.queued_at_horizon,
            in_flight_at_horizon: totals.in_flight_at_horizon,
            dropped: totals.dropped,
            evictions: totals.evictions,
            duration_s: totals.duration_s,
            achieved_rps: completed.len() as f64 / span,
            output_tokens_per_s: out_tokens as f64 / span,
            goodput_rps: met as f64 / span,
            slo_attainment: if injected == 0 { 0.0 } else { met as f64 / injected as f64 },
            ttft: LatencyStats::from_samples(records.iter().filter_map(RequestRecord::ttft_s).collect()),
            tpot: LatencyStats::from_samples(records.iter().filter_map(RequestRecord::tpot_s).collect()),
            e2e: LatencyStats::from_samples(records.iter().filter_map(RequestRecord::e2e_s).collect()),
            utilization: totals.utilization,
        }
    }

    /// Conservation check: every injected request is accounted for exactly
    /// once as completed, queued, in flight, or dropped.
    pub fn is_conserved(&self) -> bool {
        self.injected == self.completed + self.queued_at_horizon + self.in_flight_at_horizon + self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(arrival: f64, first: f64, done: f64, decode: usize) -> RequestRecord {
        RequestRecord {
            id: 0,
            wafer: 0,
            prompt_len: 32,
            decode_len: decode,
            arrival_s: arrival,
            admitted_s: arrival,
            first_token_s: first,
            completed_s: done,
            evictions: 0,
        }
    }

    #[test]
    fn latency_derivations() {
        let r = record(1.0, 1.5, 2.5, 11);
        assert!((r.ttft_s().unwrap() - 0.5).abs() < 1e-12);
        assert!((r.tpot_s().unwrap() - 0.1).abs() < 1e-12);
        assert!((r.e2e_s().unwrap() - 1.5).abs() < 1e-12);
        assert!(r.completed());
    }

    #[test]
    fn unfinished_requests_have_no_latencies() {
        let r = record(1.0, f64::NAN, f64::NAN, 10);
        assert_eq!(r.ttft_s(), None);
        assert_eq!(r.tpot_s(), None);
        assert_eq!(r.e2e_s(), None);
        assert!(!r.completed());
        assert!(!r.meets_slo(&SloConfig { ttft_s: 1e9, tpot_s: 1e9 }));
    }

    #[test]
    fn single_token_requests_have_zero_tpot() {
        let r = record(0.0, 0.5, 0.5, 1);
        assert_eq!(r.tpot_s(), Some(0.0));
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from_samples(samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_s, 0.0);
    }

    #[test]
    fn slo_splits_good_from_bad() {
        let slo = SloConfig { ttft_s: 1.0, tpot_s: 0.05 };
        let good = record(0.0, 0.5, 1.0, 11); // ttft 0.5, tpot 0.05
        let slow_first = record(0.0, 2.0, 2.5, 11); // ttft 2.0
        let slow_decode = record(0.0, 0.5, 3.0, 11); // tpot 0.25
        assert!(good.meets_slo(&slo));
        assert!(!slow_first.meets_slo(&slo));
        assert!(!slow_decode.meets_slo(&slo));
    }

    #[test]
    fn report_aggregates_and_conserves() {
        let slo = SloConfig { ttft_s: 1.0, tpot_s: 0.05 };
        let records =
            vec![record(0.0, 0.5, 1.0, 11), record(0.0, 2.0, 2.5, 11), record(0.5, f64::NAN, f64::NAN, 10)];
        let totals = RunTotals {
            queued_at_horizon: 0,
            in_flight_at_horizon: 1,
            dropped: 0,
            evictions: 3,
            duration_s: 2.5,
            utilization: 0.8,
        };
        let r = ServingReport::from_records(&records, &slo, Some(2.0), totals);
        assert_eq!(r.injected, 3);
        assert_eq!(r.completed, 2);
        assert_eq!(r.in_flight_at_horizon, 1);
        assert!(r.is_conserved());
        assert!((r.achieved_rps - 2.0 / 2.5).abs() < 1e-12);
        assert!((r.goodput_rps - 1.0 / 2.5).abs() < 1e-12);
        assert!((r.slo_attainment - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.ttft.count, 2);
        assert_eq!(r.evictions, 3);
    }

    #[test]
    fn slo_with_slack_scales_both_axes() {
        let slo = SloConfig::with_slack(0.01, 0.001, 5.0);
        assert!((slo.ttft_s - 0.05).abs() < 1e-12);
        assert!((slo.tpot_s - 0.005).abs() < 1e-12);
    }
}
