//! Checkpoint/resume for in-flight scenario runs.
//!
//! `capture` folds a [`RunState`]'s complete simulator state — the stage
//! queues, every engine's records/pending arena/active set/KV manager, the
//! policy and think-stream state, the migration log and the fault injector
//! — into a typed [`Snapshot`]. `rebuild` inverts it against the same
//! [`Scenario`] and hardware system, producing a [`RunState`] that
//! continues the identical simulation: the golden identity test drives one
//! run to the horizon and another to the midpoint, snapshots, resumes, and
//! asserts byte-identical [`crate::RunReport`]s.
//!
//! # What is (deliberately) not captured
//!
//! * The driver's **event calendar** — a pure cache over the engines,
//!   rebuilt by `refresh_engine` on resume.
//! * **Tracing, telemetry and the loop profile** — observational sinks
//!   that never feed back into the simulation; a resumed run restarts
//!   them empty.
//! * The KV manager's **core bitmaps** — write-only observability state
//!   (see [`ouro_kvcache::KvManagerSnapshot`]).
//!
//! # Serialized form
//!
//! [`Snapshot::to_json`] renders a dependency-free JSON document: an array
//! of flat objects whose values are all strings, one object per state row,
//! each tagged with a `"section"` key. Floats are serialized as the hex of
//! their IEEE-754 bit pattern (`f64::to_bits`), so round-tripping is exact
//! (including NaN payloads, which plain decimal JSON cannot carry — the
//! workspace's JSON writer renders non-finite floats as `null`).
//! [`Snapshot::parse`] is the strict inverse; the schema is versioned by
//! [`SNAPSHOT_SCHEMA_VERSION`] and guarded by a config hash so foreign
//! state cannot be resumed silently.

use crate::engine::{Engine, EngineStats};
use crate::fault::{FaultInjector, FaultInjectorSnapshot, WaferFaultSnapshot};
use crate::metrics::RequestRecord;
use crate::report::Migration;
use crate::scenario::{Deployment, Driver, RunState, Scenario};
use crate::stage::{ActiveSeq, ArrivalEvent, PendingReq, StageQueues};
use ouro_kvcache::{
    CrossbarSnapshot, KvError, KvManager, KvManagerSnapshot, KvTransferStats, SharedChainSnapshot,
};
use ouro_sim::OuroborosSystem;
use ouro_trace::{LoopProfile, TelemetryRecorder, Tracer};
use ouro_workload::SharedPrefix;
use rand::rngs::StdRng;
use std::collections::BinaryHeap;

/// Version stamp of the serialized snapshot schema. Bumped on any change
/// to the row layout; [`Snapshot::parse`] and `rebuild` both reject
/// mismatches instead of guessing.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// A complete mid-run checkpoint of one scenario run, captured by
/// [`Scenario::checkpoint`] and resumed by [`Scenario::resume`]. Serialize
/// with [`Snapshot::to_json`]; parse back with [`Snapshot::parse`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) schema_version: u32,
    /// FNV-1a over the scenario's `Debug` form: resuming under a
    /// differently-configured scenario is a hard error, not silent drift.
    pub(crate) config_hash: u64,
    pub(crate) completed: u64,
    pub(crate) faults_fired: u64,
    pub(crate) router_state: u64,
    pub(crate) placement_state: u64,
    /// Open arrivals `(at_s, trace index)`, in queue (sorted) order.
    pub(crate) arrivals: Vec<(f64, usize)>,
    /// Gated closed-loop requests, in submission order.
    pub(crate) gated: Vec<usize>,
    /// Raw xoshiro256** state of the think-time stream.
    pub(crate) think_rng: [u64; 4],
    pub(crate) migrations: Vec<Migration>,
    /// Per-engine state in global wafer order.
    pub(crate) engines: Vec<EngineSnapshot>,
    pub(crate) injector: Option<FaultInjectorSnapshot>,
}

/// One engine's complete mutable state inside a [`Snapshot`].
#[derive(Debug, Clone)]
pub(crate) struct EngineSnapshot {
    pub(crate) clock_s: f64,
    pub(crate) busy_s: f64,
    pub(crate) admission_suspended: bool,
    pub(crate) pending_tokens: usize,
    pub(crate) pending_wire_tokens: usize,
    /// Absolute mean hop distance (faults append penalties to it, so the
    /// config value cannot be assumed on resume).
    pub(crate) mean_hops: f64,
    pub(crate) order_counter: u64,
    pub(crate) stats: EngineStats,
    pub(crate) records: Vec<RequestRecord>,
    /// The pending arena's live entries `(ready_s, event)` in queue order
    /// ([`crate::arena::IndexQueue::entries`]); restored by `push_back` in
    /// order, which preserves relative ranks.
    pub(crate) pending: Vec<(f64, PendingReq)>,
    pub(crate) active: Vec<ActiveSeq>,
    pub(crate) kv: KvManagerSnapshot,
}

/// Captures the complete simulator state of `run` (see the module doc for
/// what is deliberately left out).
pub(crate) fn capture(scenario: &Scenario, run: &RunState) -> Snapshot {
    let d = &run.driver;
    Snapshot {
        schema_version: SNAPSHOT_SCHEMA_VERSION,
        config_hash: config_hash(scenario),
        completed: d.completed,
        faults_fired: d.faults_fired,
        router_state: d.router.checkpoint_state(),
        placement_state: d.placement.checkpoint_state(),
        arrivals: run.queues.arrivals.iter().map(|ev| (ev.at_s, ev.index)).collect(),
        gated: run.queues.gated.iter().copied().collect(),
        think_rng: run.queues.think_rng.state(),
        migrations: d.migrations.clone(),
        engines: d
            .engines
            .iter()
            .map(|e| EngineSnapshot {
                clock_s: e.clock_s,
                busy_s: e.busy_s,
                admission_suspended: e.admission_suspended,
                pending_tokens: e.pending_tokens,
                pending_wire_tokens: e.pending_wire_tokens,
                mean_hops: e.times.mean_hops,
                order_counter: e.order_counter,
                stats: e.stats,
                records: e.records.clone(),
                pending: e.pending.entries(),
                active: e.active.clone(),
                kv: e.manager.snapshot(),
            })
            .collect(),
        injector: run.injector.as_ref().map(FaultInjector::snapshot),
    }
}

/// Rebuilds a [`RunState`] from `snap` against replicas of `system`,
/// continuing the identical simulation.
///
/// # Errors
///
/// Propagates [`KvError`] from KV-manager reconstruction.
///
/// # Panics
///
/// Panics on a schema-version or config-hash mismatch, or when the
/// snapshot's fault state does not match the scenario's fault config.
pub(crate) fn rebuild(
    scenario: &Scenario,
    system: &OuroborosSystem,
    snap: &Snapshot,
) -> Result<RunState, KvError> {
    assert_eq!(
        snap.schema_version, SNAPSHOT_SCHEMA_VERSION,
        "snapshot schema v{} cannot be resumed by code expecting v{SNAPSHOT_SCHEMA_VERSION}",
        snap.schema_version
    );
    assert_eq!(
        snap.config_hash,
        config_hash(scenario),
        "snapshot was captured by a differently-configured scenario"
    );
    let timed = scenario.workload.as_ref().expect("Scenario needs a workload: call .workload(timed) first");
    let (prefill_wafers, total) = match scenario.deployment {
        Deployment::Colocated { wafers } => (0, wafers),
        Deployment::Disaggregated(cfg) => (cfg.prefill_wafers, cfg.total_wafers()),
    };
    assert_eq!(snap.engines.len(), total, "snapshot wafer count must match the deployment");

    let mut engines = Vec::with_capacity(total);
    for (wafer, es) in snap.engines.iter().enumerate() {
        let mut e = Engine::new(system.stage_times().clone(), system.serve_kv_config(), scenario.engine)?;
        e.manager = KvManager::restore(system.serve_kv_config(), &es.kv)?;
        e.times.mean_hops = es.mean_hops;
        e.records = es.records.clone();
        for &(ready_s, req) in &es.pending {
            e.pending.push_back(ready_s, req);
        }
        e.active = es.active.clone();
        e.admission_suspended = es.admission_suspended;
        e.clock_s = es.clock_s;
        e.busy_s = es.busy_s;
        e.pending_tokens = es.pending_tokens;
        e.pending_wire_tokens = es.pending_wire_tokens;
        e.stats = es.stats;
        e.order_counter = es.order_counter;
        if scenario.trace {
            e.set_tracer(Tracer::ring(wafer));
        }
        engines.push(e);
    }

    let mut router = scenario.router.clone();
    router.restore_state(snap.router_state);
    let mut placement = scenario.placement.clone();
    placement.restore_state(snap.placement_state);
    let mut driver = Driver {
        engines,
        prefill_wafers,
        disagg: matches!(scenario.deployment, Deployment::Disaggregated(_)),
        router,
        placement,
        link: system.stage_times().inter_wafer_link(),
        kv_bytes_per_token: system.kv_migration_bytes(1),
        migrations: snap.migrations.clone(),
        tracer: if scenario.trace { Tracer::ring(0) } else { Tracer::off() },
        telemetry: scenario.telemetry.map(TelemetryRecorder::new),
        profile: scenario.profile.then(LoopProfile::default),
        completed: snap.completed,
        faults_fired: snap.faults_fired,
        calendar: BinaryHeap::new(),
        engine_gen: vec![0; total],
    };
    for wafer in 0..total {
        driver.refresh_engine(wafer);
    }

    let queues = StageQueues {
        arrivals: snap.arrivals.iter().map(|&(at_s, index)| ArrivalEvent { at_s, index }).collect(),
        gated: snap.gated.iter().copied().collect(),
        think_time_s: match timed.config {
            ouro_workload::ArrivalConfig::ClosedLoop { think_time_s, .. } => think_time_s,
            _ => 0.0,
        },
        think_rng: StdRng::from_state(snap.think_rng),
    };
    let injector = match (scenario.fault, &snap.injector) {
        (Some(cfg), Some(is)) => Some(FaultInjector::restore(
            system,
            total,
            cfg,
            FaultInjector::run_window_s(scenario.horizon_s, timed),
            is,
        )),
        (None, None) => None,
        _ => panic!("snapshot fault state does not match the scenario's fault config"),
    };
    Ok(RunState { driver, queues, injector, scenario: scenario.clone(), horizon_s: scenario.horizon_s })
}

/// FNV-1a over the scenario's `Debug` form — cheap, dependency-free, and
/// sensitive to every config field (deployment, workload seeds, policies,
/// engine tuning, SLO, horizon, faults, observability toggles).
pub(crate) fn config_hash(scenario: &Scenario) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{scenario:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Serialization: flat-JSON rows, string values only, floats as bit-pattern
// hex. Hand-rolled on both sides — the workspace stays dependency-free, and
// `ouro_trace::json` cannot round-trip non-finite floats.
// ---------------------------------------------------------------------------

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// One serialized row: `{"section":"…","k":"v",…}`. Values never contain
/// quotes or backslashes (they are built from digits and fixed separator
/// characters), so no escaping is needed on either side.
struct Row {
    out: String,
}

impl Row {
    fn new(section: &str) -> Row {
        Row { out: format!("{{\"section\":\"{section}\"") }
    }

    fn field(mut self, key: &str, value: impl AsRef<str>) -> Row {
        let value = value.as_ref();
        debug_assert!(
            !value.contains('"') && !value.contains('\\'),
            "snapshot values must not need escaping: {value:?}"
        );
        self.out.push_str(",\"");
        self.out.push_str(key);
        self.out.push_str("\":\"");
        self.out.push_str(value);
        self.out.push('"');
        self
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

fn join<I: IntoIterator<Item = String>>(items: I, sep: char) -> String {
    let mut out = String::new();
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(sep);
        }
        out.push_str(&item);
    }
    out
}

fn slots(list: &[(usize, usize, usize)]) -> String {
    join(list.iter().map(|&(c, x, b)| format!("{c}.{x}.{b}")), ',')
}

impl Snapshot {
    /// Serializes the snapshot (see the module doc for the format).
    pub fn to_json(&self) -> String {
        let mut rows: Vec<String> = Vec::new();
        rows.push(
            Row::new("meta")
                .field("schema_version", self.schema_version.to_string())
                .field("config_hash", format!("{:016x}", self.config_hash))
                .field("completed", self.completed.to_string())
                .field("faults_fired", self.faults_fired.to_string())
                .field("router_state", self.router_state.to_string())
                .field("placement_state", self.placement_state.to_string())
                .field("think_rng", join(self.think_rng.iter().map(|w| format!("{w:016x}")), '|'))
                .field("arrivals", join(self.arrivals.iter().map(|&(t, i)| format!("{}:{i}", hex(t))), ';'))
                .field("gated", join(self.gated.iter().map(usize::to_string), ';'))
                .finish(),
        );
        for m in &self.migrations {
            rows.push(
                Row::new("migration")
                    .field("id", m.id.to_string())
                    .field("from", m.from_wafer.to_string())
                    .field("to", m.to_wafer.to_string())
                    .field("tokens", m.tokens.to_string())
                    .field("deduped", m.deduped_tokens.to_string())
                    .field("bytes", m.bytes.to_string())
                    .field("start_s", hex(m.start_s))
                    .field("arrive_s", hex(m.arrive_s))
                    .field("hops", m.wafer_hops.to_string())
                    .field("energy_j", hex(m.energy_j))
                    .finish(),
            );
        }
        for (wafer, e) in self.engines.iter().enumerate() {
            let s = &e.stats;
            rows.push(
                Row::new("engine")
                    .field("wafer", wafer.to_string())
                    .field("clock_s", hex(e.clock_s))
                    .field("busy_s", hex(e.busy_s))
                    .field("suspended", if e.admission_suspended { "1" } else { "0" })
                    .field("pending_tokens", e.pending_tokens.to_string())
                    .field("pending_wire_tokens", e.pending_wire_tokens.to_string())
                    .field("mean_hops", hex(e.mean_hops))
                    .field("order_counter", e.order_counter.to_string())
                    .field(
                        "stats",
                        format!(
                            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
                            s.admissions,
                            s.evictions,
                            s.recomputed_tokens,
                            s.prefilled_tokens,
                            s.cached_prefix_tokens,
                            s.prefix_hits,
                            s.dropped,
                            s.dropped_imported_tokens,
                            s.steps,
                            s.peak_resident,
                            s.faults,
                            s.fault_evicted_seqs,
                            s.fault_evicted_tokens,
                            hex(s.stall_s),
                        ),
                    )
                    .finish(),
            );
            for r in &e.records {
                rows.push(
                    Row::new("record")
                        .field("wafer", wafer.to_string())
                        .field("id", r.id.to_string())
                        .field("rwafer", r.wafer.to_string())
                        .field("prompt", r.prompt_len.to_string())
                        .field("decode", r.decode_len.to_string())
                        .field("arrival_s", hex(r.arrival_s))
                        .field("admitted_s", hex(r.admitted_s))
                        .field("queue_wait_s", hex(r.queue_wait_s))
                        .field("first_token_s", hex(r.first_token_s))
                        .field("completed_s", hex(r.completed_s))
                        .field("evictions", r.evictions.to_string())
                        .field("cached_prefix", r.cached_prefix_tokens.to_string())
                        .field(
                            "shared",
                            r.shared_prefix
                                .map_or_else(|| "-".to_string(), |p| format!("{}:{}", p.group, p.tokens)),
                        )
                        .finish(),
                );
            }
            for &(ready_s, p) in &e.pending {
                rows.push(
                    Row::new("pending")
                        .field("wafer", wafer.to_string())
                        .field("ready_s", hex(ready_s))
                        .field("rec", p.rec.to_string())
                        .field("decoded", p.decoded.to_string())
                        .field("imported", if p.imported { "1" } else { "0" })
                        .field("wire_tokens", p.wire_tokens.to_string())
                        .field("evicted", if p.evicted { "1" } else { "0" })
                        .field("prefill_only", if p.prefill_only { "1" } else { "0" })
                        .finish(),
                );
            }
            for a in &e.active {
                rows.push(
                    Row::new("active")
                        .field("wafer", wafer.to_string())
                        .field("rec", a.rec.to_string())
                        .field("prefill_remaining", a.prefill_remaining.to_string())
                        .field("decoded", a.decoded.to_string())
                        .field("admission_order", a.admission_order.to_string())
                        .field("prefill_only", if a.prefill_only { "1" } else { "0" })
                        .finish(),
                );
            }
            let kv = &e.kv;
            rows.push(
                Row::new("kv")
                    .field("wafer", wafer.to_string())
                    .field("ring_k", kv.ring_next[0].to_string())
                    .field("ring_v", kv.ring_next[1].to_string())
                    .field("allocated", kv.allocated_blocks.to_string())
                    .field("freed", kv.freed_blocks.to_string())
                    .field(
                        "transfers",
                        format!(
                            "{}|{}|{}|{}",
                            kv.transfers.exported_sequences,
                            kv.transfers.exported_tokens,
                            kv.transfers.imported_sequences,
                            kv.transfers.imported_tokens
                        ),
                    )
                    .finish(),
            );
            for (side, cores) in [("k", &kv.key_cores), ("v", &kv.value_cores)] {
                for (core, xbs) in cores.iter().enumerate() {
                    let encoded = join(
                        xbs.iter().map(|xb| {
                            let blocks = join(
                                xb.blocks.iter().map(|b| {
                                    b.map_or_else(
                                        || "-".to_string(),
                                        |(owner, used)| format!("{owner}:{used}"),
                                    )
                                }),
                                ',',
                            );
                            format!("{}!{blocks}", u8::from(xb.failed))
                        }),
                        ';',
                    );
                    rows.push(
                        Row::new("kv_cores")
                            .field("wafer", wafer.to_string())
                            .field("side", side)
                            .field("core", core.to_string())
                            .field("xbs", encoded)
                            .finish(),
                    );
                }
            }
            rows.push(
                Row::new("kv_page")
                    .field("wafer", wafer.to_string())
                    .field(
                        "entries",
                        join(
                            kv.page_table.iter().map(|(seq, cores)| {
                                format!("{seq}:{}", join(cores.iter().map(u64::to_string), ','))
                            }),
                            ';',
                        ),
                    )
                    .finish(),
            );
            rows.push(
                Row::new("kv_cursor")
                    .field("wafer", wafer.to_string())
                    .field(
                        "entries",
                        join(
                            kv.cursors.iter().map(|&(seq, head, role, ci, xb, b)| {
                                format!("{seq}:{head}:{role}:{ci}:{xb}:{b}")
                            }),
                            ';',
                        ),
                    )
                    .finish(),
            );
            rows.push(
                Row::new("kv_seq_blocks")
                    .field("wafer", wafer.to_string())
                    .field(
                        "entries",
                        join(
                            kv.seq_blocks.iter().map(|(seq, blocks)| {
                                format!(
                                    "{seq}:{}",
                                    join(
                                        blocks.iter().map(|&(r, ci, xb, b)| format!("{r}.{ci}.{xb}.{b}")),
                                        ','
                                    )
                                )
                            }),
                            ';',
                        ),
                    )
                    .finish(),
            );
            rows.push(
                Row::new("kv_resident")
                    .field("wafer", wafer.to_string())
                    .field(
                        "entries",
                        join(kv.resident_tokens.iter().map(|&(seq, t)| format!("{seq}:{t}")), ';'),
                    )
                    .finish(),
            );
            for (group, chain) in &kv.shared {
                rows.push(
                    Row::new("kv_shared")
                        .field("wafer", wafer.to_string())
                        .field("group", group.to_string())
                        .field("k_cores", join(chain.k_cores.iter().map(usize::to_string), ','))
                        .field("v_cores", join(chain.v_cores.iter().map(usize::to_string), ','))
                        .field(
                            "nodes",
                            join(
                                chain.nodes.iter().map(|(refs, k_slots, v_slots)| {
                                    format!("{refs}!{}!{}", slots(k_slots), slots(v_slots))
                                }),
                                ';',
                            ),
                        )
                        .finish(),
                );
            }
            rows.push(
                Row::new("kv_seq_shared")
                    .field("wafer", wafer.to_string())
                    .field(
                        "entries",
                        join(kv.seq_shared.iter().map(|&(seq, g, n)| format!("{seq}:{g}:{n}")), ';'),
                    )
                    .finish(),
            );
        }
        if let Some(inj) = &self.injector {
            rows.push(
                Row::new("injector")
                    .field(
                        "events",
                        join(inj.events.iter().map(|&(w, t, draw)| format!("{w}:{}:{draw}", hex(t))), ';'),
                    )
                    .field("counters", join(inj.counters.iter().map(u64::to_string), '|'))
                    .finish(),
            );
            for (wafer, w) in inj.wafers.iter().enumerate() {
                rows.push(
                    Row::new("injector_wafer")
                        .field("wafer", wafer.to_string())
                        .field("assignment", join(w.assignment.iter().map(u64::to_string), ';'))
                        .field("kv_cores", join(w.kv_cores.iter().map(u64::to_string), ';'))
                        .field("failed", join(w.failed.iter().map(u64::to_string), ';'))
                        .field("death_s", hex(w.death_s))
                        .field("stall_s", hex(w.stall_s))
                        .finish(),
                );
            }
        }
        let mut out = String::from("[\n");
        out.push_str(&rows.join(",\n"));
        out.push_str("\n]\n");
        out
    }

    /// Parses a [`Snapshot::to_json`] document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token, unknown
    /// section, missing field, or schema-version mismatch.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let rows = parse_rows(text)?;
        let mut snap = Snapshot {
            schema_version: 0,
            config_hash: 0,
            completed: 0,
            faults_fired: 0,
            router_state: 0,
            placement_state: 0,
            arrivals: Vec::new(),
            gated: Vec::new(),
            think_rng: [0; 4],
            migrations: Vec::new(),
            engines: Vec::new(),
            injector: None,
        };
        let mut saw_meta = false;
        for row in rows {
            let section = row.get("section")?;
            match section {
                "meta" => {
                    saw_meta = true;
                    snap.schema_version =
                        row.get("schema_version")?.parse().map_err(|e| format!("schema_version: {e}"))?;
                    if snap.schema_version != SNAPSHOT_SCHEMA_VERSION {
                        return Err(format!(
                            "snapshot schema v{} is not the supported v{SNAPSHOT_SCHEMA_VERSION}",
                            snap.schema_version
                        ));
                    }
                    snap.config_hash = p_hex_u64(row.get("config_hash")?)?;
                    snap.completed = p_u64(row.get("completed")?)?;
                    snap.faults_fired = p_u64(row.get("faults_fired")?)?;
                    snap.router_state = p_u64(row.get("router_state")?)?;
                    snap.placement_state = p_u64(row.get("placement_state")?)?;
                    let rng: Vec<u64> =
                        split(row.get("think_rng")?, '|').map(p_hex_u64).collect::<Result<_, _>>()?;
                    snap.think_rng = rng
                        .try_into()
                        .map_err(|v: Vec<u64>| format!("think_rng has {} words, expected 4", v.len()))?;
                    snap.arrivals = split(row.get("arrivals")?, ';')
                        .map(|item| {
                            let (t, i) = pair(item, ':')?;
                            Ok((p_f64(t)?, p_usize(i)?))
                        })
                        .collect::<Result<_, String>>()?;
                    snap.gated = split(row.get("gated")?, ';').map(p_usize).collect::<Result<_, _>>()?;
                }
                "migration" => snap.migrations.push(Migration {
                    id: p_usize(row.get("id")?)?,
                    from_wafer: p_usize(row.get("from")?)?,
                    to_wafer: p_usize(row.get("to")?)?,
                    tokens: p_u64(row.get("tokens")?)?,
                    deduped_tokens: p_u64(row.get("deduped")?)?,
                    bytes: p_u64(row.get("bytes")?)?,
                    start_s: p_f64(row.get("start_s")?)?,
                    arrive_s: p_f64(row.get("arrive_s")?)?,
                    wafer_hops: p_usize(row.get("hops")?)?,
                    energy_j: p_f64(row.get("energy_j")?)?,
                }),
                "engine" => {
                    let wafer = p_usize(row.get("wafer")?)?;
                    if wafer != snap.engines.len() {
                        return Err(format!("engine row for wafer {wafer} out of order"));
                    }
                    let s: Vec<&str> = row.get("stats")?.split('|').collect();
                    if s.len() != 14 {
                        return Err(format!("engine stats has {} fields, expected 14", s.len()));
                    }
                    snap.engines.push(EngineSnapshot {
                        clock_s: p_f64(row.get("clock_s")?)?,
                        busy_s: p_f64(row.get("busy_s")?)?,
                        admission_suspended: p_bool(row.get("suspended")?)?,
                        pending_tokens: p_usize(row.get("pending_tokens")?)?,
                        pending_wire_tokens: p_usize(row.get("pending_wire_tokens")?)?,
                        mean_hops: p_f64(row.get("mean_hops")?)?,
                        order_counter: p_u64(row.get("order_counter")?)?,
                        stats: EngineStats {
                            admissions: p_u64(s[0])?,
                            evictions: p_u64(s[1])?,
                            recomputed_tokens: p_u64(s[2])?,
                            prefilled_tokens: p_u64(s[3])?,
                            cached_prefix_tokens: p_u64(s[4])?,
                            prefix_hits: p_u64(s[5])?,
                            dropped: p_u64(s[6])?,
                            dropped_imported_tokens: p_u64(s[7])?,
                            steps: p_u64(s[8])?,
                            peak_resident: p_usize(s[9])?,
                            faults: p_u64(s[10])?,
                            fault_evicted_seqs: p_u64(s[11])?,
                            fault_evicted_tokens: p_u64(s[12])?,
                            stall_s: p_f64(s[13])?,
                        },
                        records: Vec::new(),
                        pending: Vec::new(),
                        active: Vec::new(),
                        kv: KvManagerSnapshot {
                            ring_next: [0, 0],
                            allocated_blocks: 0,
                            freed_blocks: 0,
                            transfers: KvTransferStats::default(),
                            key_cores: Vec::new(),
                            value_cores: Vec::new(),
                            page_table: Vec::new(),
                            cursors: Vec::new(),
                            seq_blocks: Vec::new(),
                            resident_tokens: Vec::new(),
                            shared: Vec::new(),
                            seq_shared: Vec::new(),
                        },
                    });
                }
                "record" | "pending" | "active" | "kv" | "kv_cores" | "kv_page" | "kv_cursor"
                | "kv_seq_blocks" | "kv_resident" | "kv_shared" | "kv_seq_shared" => {
                    let wafer = p_usize(row.get("wafer")?)?;
                    let e = snap
                        .engines
                        .get_mut(wafer)
                        .ok_or_else(|| format!("{section} row for wafer {wafer} precedes its engine row"))?;
                    parse_engine_row(section, &row, e)?;
                }
                "injector" => {
                    snap.injector = Some(FaultInjectorSnapshot {
                        events: split(row.get("events")?, ';')
                            .map(|item| {
                                let mut it = item.split(':');
                                let (w, t, draw) = (next(&mut it)?, next(&mut it)?, next(&mut it)?);
                                Ok((p_usize(w)?, p_f64(t)?, p_u64(draw)?))
                            })
                            .collect::<Result<_, String>>()?,
                        wafers: Vec::new(),
                        counters: split(row.get("counters")?, '|')
                            .map(p_u64)
                            .collect::<Result<Vec<u64>, _>>()?
                            .try_into()
                            .map_err(|v: Vec<u64>| {
                                format!("injector has {} counters, expected 8", v.len())
                            })?,
                    });
                }
                "injector_wafer" => {
                    let inj = snap.injector.as_mut().ok_or("injector_wafer row precedes the injector row")?;
                    inj.wafers.push(WaferFaultSnapshot {
                        assignment: split(row.get("assignment")?, ';')
                            .map(p_u64)
                            .collect::<Result<_, _>>()?,
                        kv_cores: split(row.get("kv_cores")?, ';').map(p_u64).collect::<Result<_, _>>()?,
                        failed: split(row.get("failed")?, ';').map(p_u64).collect::<Result<_, _>>()?,
                        death_s: p_f64(row.get("death_s")?)?,
                        stall_s: p_f64(row.get("stall_s")?)?,
                    });
                }
                other => return Err(format!("unknown snapshot section {other:?}")),
            }
        }
        if !saw_meta {
            return Err("snapshot has no meta row".to_string());
        }
        Ok(snap)
    }
}

fn parse_engine_row(section: &str, row: &ParsedRow, e: &mut EngineSnapshot) -> Result<(), String> {
    match section {
        "record" => e.records.push(RequestRecord {
            id: p_usize(row.get("id")?)?,
            wafer: p_usize(row.get("rwafer")?)?,
            prompt_len: p_usize(row.get("prompt")?)?,
            decode_len: p_usize(row.get("decode")?)?,
            arrival_s: p_f64(row.get("arrival_s")?)?,
            admitted_s: p_f64(row.get("admitted_s")?)?,
            queue_wait_s: p_f64(row.get("queue_wait_s")?)?,
            first_token_s: p_f64(row.get("first_token_s")?)?,
            completed_s: p_f64(row.get("completed_s")?)?,
            evictions: row.get("evictions")?.parse().map_err(|e| format!("evictions: {e}"))?,
            cached_prefix_tokens: p_usize(row.get("cached_prefix")?)?,
            shared_prefix: match row.get("shared")? {
                "-" => None,
                s => {
                    let (g, t) = pair(s, ':')?;
                    Some(SharedPrefix { group: p_u64(g)?, tokens: p_usize(t)? })
                }
            },
        }),
        "pending" => e.pending.push((
            p_f64(row.get("ready_s")?)?,
            PendingReq {
                rec: p_usize(row.get("rec")?)?,
                decoded: p_usize(row.get("decoded")?)?,
                ready_s: p_f64(row.get("ready_s")?)?,
                imported: p_bool(row.get("imported")?)?,
                wire_tokens: p_usize(row.get("wire_tokens")?)?,
                evicted: p_bool(row.get("evicted")?)?,
                prefill_only: p_bool(row.get("prefill_only")?)?,
            },
        )),
        "active" => e.active.push(ActiveSeq {
            rec: p_usize(row.get("rec")?)?,
            prefill_remaining: p_usize(row.get("prefill_remaining")?)?,
            decoded: p_usize(row.get("decoded")?)?,
            admission_order: p_u64(row.get("admission_order")?)?,
            prefill_only: p_bool(row.get("prefill_only")?)?,
        }),
        "kv" => {
            e.kv.ring_next = [p_usize(row.get("ring_k")?)?, p_usize(row.get("ring_v")?)?];
            e.kv.allocated_blocks = p_u64(row.get("allocated")?)?;
            e.kv.freed_blocks = p_u64(row.get("freed")?)?;
            let t: Vec<&str> = row.get("transfers")?.split('|').collect();
            if t.len() != 4 {
                return Err(format!("kv transfers has {} fields, expected 4", t.len()));
            }
            e.kv.transfers = KvTransferStats {
                exported_sequences: p_u64(t[0])?,
                exported_tokens: p_u64(t[1])?,
                imported_sequences: p_u64(t[2])?,
                imported_tokens: p_u64(t[3])?,
            };
        }
        "kv_cores" => {
            let xbs: Vec<CrossbarSnapshot> = split(row.get("xbs")?, ';')
                .map(|xb| {
                    let (failed, blocks) = pair(xb, '!')?;
                    Ok(CrossbarSnapshot {
                        failed: p_bool(failed)?,
                        blocks: split(blocks, ',')
                            .map(|b| {
                                if b == "-" {
                                    Ok(None)
                                } else {
                                    let (owner, used) = pair(b, ':')?;
                                    Ok(Some((p_u64(owner)?, p_usize(used)?)))
                                }
                            })
                            .collect::<Result<_, String>>()?,
                    })
                })
                .collect::<Result<_, String>>()?;
            let side = match row.get("side")? {
                "k" => &mut e.kv.key_cores,
                "v" => &mut e.kv.value_cores,
                other => return Err(format!("unknown kv side {other:?}")),
            };
            if p_usize(row.get("core")?)? != side.len() {
                return Err("kv_cores row out of order".to_string());
            }
            side.push(xbs);
        }
        "kv_page" => {
            e.kv.page_table = split(row.get("entries")?, ';')
                .map(|item| {
                    let (seq, cores) = pair(item, ':')?;
                    Ok((p_u64(seq)?, split(cores, ',').map(p_u64).collect::<Result<_, _>>()?))
                })
                .collect::<Result<_, String>>()?;
        }
        "kv_cursor" => {
            e.kv.cursors = split(row.get("entries")?, ';')
                .map(|item| {
                    let mut it = item.split(':');
                    Ok((
                        p_u64(next(&mut it)?)?,
                        p_usize(next(&mut it)?)?,
                        p_u8(next(&mut it)?)?,
                        p_usize(next(&mut it)?)?,
                        p_usize(next(&mut it)?)?,
                        p_usize(next(&mut it)?)?,
                    ))
                })
                .collect::<Result<_, String>>()?;
        }
        "kv_seq_blocks" => {
            e.kv.seq_blocks = split(row.get("entries")?, ';')
                .map(|item| {
                    let (seq, blocks) = pair(item, ':')?;
                    Ok((
                        p_u64(seq)?,
                        split(blocks, ',')
                            .map(|b| {
                                let mut it = b.split('.');
                                Ok((
                                    p_u8(next(&mut it)?)?,
                                    p_usize(next(&mut it)?)?,
                                    p_usize(next(&mut it)?)?,
                                    p_usize(next(&mut it)?)?,
                                ))
                            })
                            .collect::<Result<_, String>>()?,
                    ))
                })
                .collect::<Result<_, String>>()?;
        }
        "kv_resident" => {
            e.kv.resident_tokens = split(row.get("entries")?, ';')
                .map(|item| {
                    let (seq, t) = pair(item, ':')?;
                    Ok((p_u64(seq)?, p_usize(t)?))
                })
                .collect::<Result<_, String>>()?;
        }
        "kv_shared" => {
            let p_slots = |s: &str| -> Result<Vec<(usize, usize, usize)>, String> {
                split(s, ',')
                    .map(|slot| {
                        let mut it = slot.split('.');
                        Ok((p_usize(next(&mut it)?)?, p_usize(next(&mut it)?)?, p_usize(next(&mut it)?)?))
                    })
                    .collect()
            };
            e.kv.shared.push((
                p_u64(row.get("group")?)?,
                SharedChainSnapshot {
                    k_cores: split(row.get("k_cores")?, ',').map(p_usize).collect::<Result<_, _>>()?,
                    v_cores: split(row.get("v_cores")?, ',').map(p_usize).collect::<Result<_, _>>()?,
                    nodes: split(row.get("nodes")?, ';')
                        .map(|node| {
                            let mut it = node.split('!');
                            let refs = p_usize(next(&mut it)?)?;
                            let k = p_slots(next(&mut it)?)?;
                            let v = p_slots(next(&mut it)?)?;
                            Ok((refs, k, v))
                        })
                        .collect::<Result<_, String>>()?,
                },
            ));
        }
        "kv_seq_shared" => {
            e.kv.seq_shared = split(row.get("entries")?, ';')
                .map(|item| {
                    let mut it = item.split(':');
                    Ok((p_u64(next(&mut it)?)?, p_u64(next(&mut it)?)?, p_usize(next(&mut it)?)?))
                })
                .collect::<Result<_, String>>()?;
        }
        _ => unreachable!("dispatched above"),
    }
    Ok(())
}

// --- tiny strict parser helpers -------------------------------------------

/// One parsed row's `key → value` pairs (values are always strings).
struct ParsedRow {
    pairs: Vec<(String, String)>,
}

impl ParsedRow {
    fn get(&self, key: &str) -> Result<&str, String> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("snapshot row is missing field {key:?}"))
    }
}

/// Parses the outer `[ {…}, {…} ]` document. The grammar is the exact
/// output of [`Snapshot::to_json`]: objects of string-valued fields, no
/// escapes, no nested containers.
fn parse_rows(text: &str) -> Result<Vec<ParsedRow>, String> {
    let b = text.as_bytes();
    let mut i = 0usize;
    let ws = |b: &[u8], i: &mut usize| {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1
        }
    };
    let expect = |b: &[u8], i: &mut usize, c: u8| -> Result<(), String> {
        if *i < b.len() && b[*i] == c {
            *i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *i))
        }
    };
    let string = |b: &[u8], i: &mut usize| -> Result<String, String> {
        expect(b, i, b'"')?;
        let start = *i;
        while *i < b.len() && b[*i] != b'"' {
            if b[*i] == b'\\' {
                return Err(format!("unexpected escape at byte {}", *i));
            }
            *i += 1;
        }
        if *i >= b.len() {
            return Err("unterminated string".to_string());
        }
        let s = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?.to_string();
        *i += 1;
        Ok(s)
    };

    let mut rows = Vec::new();
    ws(b, &mut i);
    expect(b, &mut i, b'[')?;
    ws(b, &mut i);
    if i < b.len() && b[i] == b']' {
        return Ok(rows);
    }
    loop {
        expect(b, &mut i, b'{')?;
        let mut pairs = Vec::new();
        loop {
            ws(b, &mut i);
            let key = string(b, &mut i)?;
            ws(b, &mut i);
            expect(b, &mut i, b':')?;
            ws(b, &mut i);
            let value = string(b, &mut i)?;
            pairs.push((key, value));
            ws(b, &mut i);
            if i < b.len() && b[i] == b',' {
                i += 1;
                continue;
            }
            break;
        }
        expect(b, &mut i, b'}')?;
        rows.push(ParsedRow { pairs });
        ws(b, &mut i);
        if i < b.len() && b[i] == b',' {
            i += 1;
            ws(b, &mut i);
            continue;
        }
        break;
    }
    expect(b, &mut i, b']')?;
    Ok(rows)
}

fn split(s: &str, sep: char) -> impl Iterator<Item = &str> {
    s.split(sep).filter(|p| !p.is_empty())
}

fn pair(s: &str, sep: char) -> Result<(&str, &str), String> {
    s.split_once(sep).ok_or_else(|| format!("expected {sep:?}-separated pair, got {s:?}"))
}

fn next<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<&'a str, String> {
    it.next().ok_or_else(|| "truncated tuple in snapshot row".to_string())
}

fn p_u64(s: &str) -> Result<u64, String> {
    s.parse().map_err(|e| format!("bad u64 {s:?}: {e}"))
}

fn p_u8(s: &str) -> Result<u8, String> {
    s.parse().map_err(|e| format!("bad u8 {s:?}: {e}"))
}

fn p_usize(s: &str) -> Result<usize, String> {
    s.parse().map_err(|e| format!("bad usize {s:?}: {e}"))
}

fn p_hex_u64(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex u64 {s:?}: {e}"))
}

fn p_f64(s: &str) -> Result<f64, String> {
    Ok(f64::from_bits(p_hex_u64(s)?))
}

fn p_bool(s: &str) -> Result<bool, String> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("bad bool {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_hex_round_trips_every_bit_pattern_class() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE, 1e-300] {
            assert_eq!(p_f64(&hex(v)).unwrap().to_bits(), v.to_bits());
        }
        assert!(p_f64(&hex(f64::NAN)).unwrap().is_nan());
    }

    #[test]
    fn config_hash_distinguishes_scenarios() {
        let a = Scenario::colocated(2);
        let b = Scenario::colocated(3);
        assert_eq!(config_hash(&a), config_hash(&a));
        assert_ne!(config_hash(&a), config_hash(&b));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Snapshot::parse("").is_err());
        assert!(Snapshot::parse("[]").is_err(), "a meta row is required");
        assert!(Snapshot::parse("[{\"section\":\"warp\"}]").is_err());
        assert!(Snapshot::parse("[{\"section\":\"meta\"}]").is_err(), "meta fields are required");
    }
}
