//! Load-sweep driver: offered load vs. achieved throughput and tail latency.
//!
//! The standard serving-capacity methodology: hold the workload mix fixed,
//! sweep the open-loop arrival rate, and record achieved throughput, tail
//! latency, and SLO goodput at every point. Below saturation the achieved
//! rate tracks the offered rate; past it the queue grows without bound,
//! goodput flattens or falls, and tail latency explodes — the knee locates
//! the wafer's serving capacity. Each point is one colocated
//! [`crate::scenario::Scenario`] run, so sweep rows share the unified
//! [`RunReport`] schema.

use crate::engine::EngineConfig;
use crate::metrics::SloConfig;
use crate::parallel::parallel_map_indexed;
use crate::policy::{routers, Router};
use crate::report::RunReport;
use crate::scenario::Scenario;
use ouro_sim::{HwStageTimes, OuroborosSystem};
use ouro_workload::{ArrivalConfig, LengthConfig, TraceGenerator};

/// Configuration of one load sweep.
#[derive(Debug, Clone)]
pub struct LoadSweep {
    /// Offered loads to sweep, in requests per second per cluster.
    pub rates_rps: Vec<f64>,
    /// Number of requests injected at each point.
    pub requests: usize,
    /// Sequence-length mix.
    pub lengths: LengthConfig,
    /// Trace / arrival seed (one fixed seed across the sweep so points share
    /// the same request mix).
    pub seed: u64,
    /// Number of wafers in the cluster.
    pub wafers: usize,
    /// Routing policy.
    pub router: Box<dyn Router>,
    /// Per-engine tuning.
    pub engine: EngineConfig,
    /// Latency SLO for goodput.
    pub slo: SloConfig,
    /// Simulation horizon per point (bounds the overloaded tail).
    pub horizon_s: f64,
    /// Worker threads for the sweep (each point is an independent seeded
    /// run; results return in input order, so any thread count produces
    /// identical output). `1` runs inline.
    pub threads: usize,
}

/// One point of a sweep: the offered load and the resulting report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered load in requests per second.
    pub offered_rps: f64,
    /// The unified run report at this load.
    pub report: RunReport,
}

impl LoadSweep {
    /// A sweep with sensible defaults around an estimated per-wafer capacity
    /// of `capacity_rps`: six points from 20% to 160% of the cluster's
    /// aggregate capacity.
    pub fn around_capacity(
        capacity_rps: f64,
        wafers: usize,
        lengths: LengthConfig,
        slo: SloConfig,
    ) -> LoadSweep {
        let aggregate = capacity_rps * wafers as f64;
        LoadSweep {
            rates_rps: [0.2, 0.5, 0.8, 1.0, 1.3, 1.6].iter().map(|f| f * aggregate).collect(),
            requests: 200,
            lengths,
            seed: 2026,
            wafers,
            router: routers::least_kv_load(),
            engine: EngineConfig::default(),
            slo,
            horizon_s: f64::INFINITY,
            threads: 1,
        }
    }

    /// Runs the sweep against replicas of `system`, one scenario per offered
    /// load, on [`LoadSweep::threads`] workers.
    pub fn run(&self, system: &OuroborosSystem) -> Vec<SweepPoint> {
        let trace = TraceGenerator::new(self.seed).generate(&self.lengths, self.requests);
        parallel_map_indexed(self.rates_rps.clone(), self.threads, |_, rate| {
            let timed = ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, self.seed);
            let report = Scenario::colocated(self.wafers)
                .router(self.router.clone())
                .engine(self.engine)
                .slo(self.slo)
                .horizon(self.horizon_s)
                .workload(timed)
                .run(system)
                .expect("system was built with KV cores");
            SweepPoint { offered_rps: rate, report }
        })
    }
}

/// Unloaded ("ideal") TTFT and TPOT of one wafer for a typical request, used
/// to anchor SLOs: the prefill pipeline pass plus prompt streaming for TTFT,
/// and the full pipeline pass for TPOT (a lone request's decode token must
/// traverse all `6·blocks` stages; the bottleneck interval is only reached in
/// aggregate when the token-grained pipeline is saturated by a batch).
pub fn ideal_latencies(times: &HwStageTimes, prompt_len: usize, context: usize) -> (f64, f64) {
    let pipeline = times.token_pipeline_latency_s(context);
    let ttft = pipeline + prompt_len as f64 * times.bottleneck_stage_s(context);
    (ttft, pipeline)
}

/// Estimates one wafer's request capacity for a workload mix: the
/// steady-state token rate divided by tokens per request.
pub fn capacity_rps_estimate(times: &HwStageTimes, lengths: &LengthConfig) -> f64 {
    let tokens_per_request = lengths.nominal_total_tokens().max(1) as f64;
    let context = (tokens_per_request * 0.75).max(1.0) as usize;
    let token_rate = 1.0 / times.bottleneck_stage_s(context);
    token_rate / tokens_per_request
}

/// Formats a sweep as a fixed-width throughput-vs-latency table.
pub fn format_sweep(points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10} {:>10} {:>10} {:>10} {:>11} {:>11} {:>11} {:>11} {:>8} {:>7}\n",
        "offered/s",
        "done/s",
        "goodput/s",
        "tok/s",
        "ttft-p50",
        "ttft-p99",
        "tpot-p50",
        "tpot-p99",
        "slo-att",
        "util"
    ));
    for p in points {
        let r = &p.report.serving;
        out.push_str(&format!(
            "{:>10.1} {:>10.1} {:>10.1} {:>10.0} {:>10.1}ms {:>10.1}ms {:>10.3}ms {:>10.3}ms {:>7.1}% {:>6.1}%\n",
            p.offered_rps,
            r.achieved_rps,
            r.goodput_rps,
            r.output_tokens_per_s,
            r.ttft.p50_s * 1e3,
            r.ttft.p99_s * 1e3,
            r.tpot.p50_s * 1e3,
            r.tpot.p99_s * 1e3,
            r.slo_attainment * 100.0,
            r.utilization * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_model::zoo;
    use ouro_sim::OuroborosConfig;

    fn tiny_system() -> OuroborosSystem {
        OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
    }

    #[test]
    fn sweep_throughput_rises_then_saturates() {
        let sys = tiny_system();
        let times = sys.stage_times();
        let lengths = LengthConfig::fixed(64, 48);
        let capacity = capacity_rps_estimate(times, &lengths);
        let (ttft, tpot) = ideal_latencies(times, 64, 112);
        let slo = SloConfig::with_slack(ttft, tpot, 10.0);
        let mut sweep = LoadSweep::around_capacity(capacity, 2, lengths, slo);
        sweep.requests = 80;
        let points = sweep.run(&sys);
        assert_eq!(points.len(), 6);
        for w in points.windows(2) {
            assert!(
                w[1].report.serving.output_tokens_per_s >= w[0].report.serving.output_tokens_per_s * 0.95,
                "token throughput must not collapse as load rises: {} then {}",
                w[0].report.serving.output_tokens_per_s,
                w[1].report.serving.output_tokens_per_s
            );
        }
        // Under light load everything completes; the table formats.
        assert_eq!(points[0].report.serving.completed, 80);
        let table = format_sweep(&points);
        assert!(table.contains("offered/s"));
        for p in &points {
            assert!(p.report.is_conserved());
        }
    }

    #[test]
    fn tail_latency_grows_with_load() {
        let sys = tiny_system();
        let lengths = LengthConfig::fixed(64, 48);
        let capacity = capacity_rps_estimate(sys.stage_times(), &lengths);
        let slo = SloConfig { ttft_s: 1.0, tpot_s: 0.1 };
        let mut sweep = LoadSweep::around_capacity(capacity, 1, lengths, slo);
        sweep.requests = 60;
        let points = sweep.run(&sys);
        let first = &points[0].report.serving;
        let last = &points[points.len() - 1].report.serving;
        assert!(
            last.ttft.p99_s >= first.ttft.p99_s,
            "p99 TTFT should not shrink under overload: {} vs {}",
            first.ttft.p99_s,
            last.ttft.p99_s
        );
    }

    #[test]
    fn capacity_estimate_is_positive_and_finite() {
        let sys = tiny_system();
        let c = capacity_rps_estimate(sys.stage_times(), &LengthConfig::wikitext2_like());
        assert!(c.is_finite() && c > 0.0);
        let (ttft, tpot) = ideal_latencies(sys.stage_times(), 128, 256);
        assert!(ttft > tpot);
        assert!(tpot > 0.0);
    }
}
