//! The staged request pipeline: `Arrival → Admission → Prefill → Migrate →
//! Decode → Complete`.
//!
//! Every request the serving stack simulates walks the same lifecycle, but
//! the code that advanced it used to live as interleaved mutation inside
//! `Driver::drive` and `Engine::step`. This module makes the pipeline
//! explicit: each stage is a typed unit (one submodule of free functions
//! over the engine/driver state), consuming and producing typed event
//! queues, and the [`Stage`] enum names them so trace emission can be
//! audited in one place.
//!
//! The queues:
//!
//! * **Arrival** owns `StageQueues`: the sorted open-arrival deque plus
//!   the closed-loop gate (released in completion order through the seeded
//!   think-time stream).
//! * **Admission** consumes the per-engine pending arena
//!   (`crate::arena::IndexQueue` of `PendingReq` admission events) and
//!   produces residency (`ActiveSeq` entries in the engine's active set).
//! * **Prefill** and **Decode** advance the active set — one interleaved
//!   pass per iteration, because a continuous-batching step moves prefill
//!   chunks and decode tokens through the *same* pipeline pass.
//! * **Migrate**'s in-flight set is the imported subset of the decode
//!   engines' pending arenas (a migration is announced as a
//!   `PendingReq` gated on its landing time); it is deliberately not
//!   duplicated into a separate queue, so the conservation invariant
//!   `arrivals + gated + Σ pending + Σ active + completed + dropped =
//!   injected` holds at every step boundary.
//! * **Complete** retires finished sequences (releasing closed-loop users
//!   or handing KV to Migrate on a disaggregated prefill pool).
//!
//! Together with the engines' KV managers and the fault injector these
//! queues are the *complete* simulator state — which is what makes
//! [`crate::scenario::Scenario::checkpoint`] /
//! [`crate::scenario::Scenario::resume`] possible.
//!
//! # Event-kind ownership
//!
//! Each lifecycle [`EventKind`] is emitted by exactly one stage; the
//! mapping is the single table behind [`event_kind`], and every emission
//! site routes through `Stage::emit` / `Stage::emit_for`, which
//! debug-assert the table. Fault and remap events are out-of-band (they
//! interrupt the pipeline rather than advance it) and belong to the
//! pseudo-stage [`Stage::Fault`].

pub(crate) mod admission;
pub(crate) mod arrival;
pub(crate) mod complete;
pub(crate) mod decode;
pub(crate) mod migrate;
pub(crate) mod prefill;

use ouro_trace::{EventKind, Tracer};
use ouro_workload::TimedTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// The stages of the request pipeline, plus the out-of-band fault path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// A request enters the cluster and is routed to an entry wafer.
    Arrival,
    /// The engine admits (or drops, or evicts for) a pending request.
    Admission,
    /// Prompt tokens stream through the pipeline.
    Prefill,
    /// KV moves between wafers (disaggregated handoff).
    Migrate,
    /// Autoregressive token generation.
    Decode,
    /// The request retires.
    Complete,
    /// Out-of-band: runtime core faults and replacement-chain remaps.
    Fault,
}

impl Stage {
    /// Every stage, in pipeline order (the fault pseudo-stage last).
    pub const ALL: [Stage; 7] = [
        Stage::Arrival,
        Stage::Admission,
        Stage::Prefill,
        Stage::Migrate,
        Stage::Decode,
        Stage::Complete,
        Stage::Fault,
    ];

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Arrival => "arrival",
            Stage::Admission => "admission",
            Stage::Prefill => "prefill",
            Stage::Migrate => "migrate",
            Stage::Decode => "decode",
            Stage::Complete => "complete",
            Stage::Fault => "fault",
        }
    }

    /// Emits `kind` on `tracer`, debug-asserting that this stage owns the
    /// kind per [`event_kind`]. All engine-stream emission sites route
    /// through here, so the ownership table cannot drift from the code.
    pub(crate) fn emit(self, tracer: &mut Tracer, t_s: f64, req: Option<usize>, kind: EventKind) {
        debug_assert_eq!(
            event_kind(kind.name()),
            self,
            "stage {self:?} emitted {}, owned by {:?}",
            kind.name(),
            event_kind(kind.name())
        );
        // audit: allow(stage-emit, "the single blessed forwarding site behind the debug-asserted ownership table")
        tracer.emit(t_s, req, kind);
    }

    /// [`Stage::emit`] for driver-stream events stamped onto a wafer.
    pub(crate) fn emit_for(
        self,
        tracer: &mut Tracer,
        wafer: usize,
        t_s: f64,
        req: Option<usize>,
        kind: EventKind,
    ) {
        debug_assert_eq!(
            event_kind(kind.name()),
            self,
            "stage {self:?} emitted {}, owned by {:?}",
            kind.name(),
            event_kind(kind.name())
        );
        // audit: allow(stage-emit, "the single blessed forwarding site behind the debug-asserted ownership table")
        tracer.emit_for(wafer, t_s, req, kind);
    }
}

/// The single table mapping every lifecycle event kind (by its pinned
/// [`EventKind::ALL_NAMES`] name) to the stage that emits it. Each kind is
/// owned by exactly one stage — asserted by the coverage test below and,
/// in debug builds, at every emission site via `Stage::emit`.
pub const EVENT_OWNERS: [(&str, Stage); 15] = [
    ("arrival", Stage::Arrival),
    ("admission", Stage::Admission),
    ("drop", Stage::Admission),
    ("evict", Stage::Admission),
    ("prefill_start", Stage::Prefill),
    ("prefill_end", Stage::Prefill),
    ("kv_export", Stage::Migrate),
    ("kv_import", Stage::Migrate),
    ("migrate_start", Stage::Migrate),
    ("migrate_arrive", Stage::Migrate),
    ("decode_step", Stage::Decode),
    ("first_token", Stage::Decode),
    ("complete", Stage::Complete),
    ("fault", Stage::Fault),
    ("remap", Stage::Fault),
];

/// The stage that owns (is the unique emitter of) the event kind named
/// `name` — the table-driven lookup behind every emission site.
///
/// # Panics
///
/// Panics on a name outside [`EventKind::ALL_NAMES`]; the taxonomy is
/// closed, so an unknown name is a programming error.
pub fn event_kind(name: &str) -> Stage {
    EVENT_OWNERS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, s)| s)
        .unwrap_or_else(|| panic!("event kind {name:?} is outside the closed taxonomy"))
}

/// One open arrival waiting to be routed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ArrivalEvent {
    /// Instant the request enters the cluster.
    pub(crate) at_s: f64,
    /// Index into the timed trace's arrival list.
    pub(crate) index: usize,
}

/// The arrival stage's typed queues — together with the per-engine pending
/// arenas and active sets, the complete request-location state of a run.
#[derive(Debug, Clone)]
pub(crate) struct StageQueues {
    /// Open arrivals, sorted ascending by time. Closed-loop releases are
    /// re-inserted in sorted position as completions free their users.
    pub(crate) arrivals: VecDeque<ArrivalEvent>,
    /// Closed-loop requests waiting for a completion to release them, in
    /// submission order.
    pub(crate) gated: VecDeque<usize>,
    /// Mean think time between a completion and the released arrival.
    pub(crate) think_time_s: f64,
    /// The seeded think-time stream (deterministically derived from the
    /// workload seed; its raw state is checkpointed so a resumed run
    /// continues the same stream).
    pub(crate) think_rng: StdRng,
}

impl StageQueues {
    /// Builds the arrival queues of a fresh run over `timed`.
    pub(crate) fn new(timed: &TimedTrace) -> StageQueues {
        let arrivals: VecDeque<ArrivalEvent> = timed
            .arrivals
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_gated())
            .map(|(i, r)| ArrivalEvent { at_s: r.arrival_s, index: i })
            .collect();
        let gated: VecDeque<usize> =
            timed.arrivals.iter().enumerate().filter(|(_, r)| r.is_gated()).map(|(i, _)| i).collect();
        let think_time_s = match timed.config {
            ouro_workload::ArrivalConfig::ClosedLoop { think_time_s, .. } => think_time_s,
            _ => 0.0,
        };
        StageQueues {
            arrivals,
            gated,
            think_time_s,
            think_rng: StdRng::seed_from_u64(timed.seed ^ 0x7417_1e5e_ed00_0002),
        }
    }

    /// Requests not yet handed to any engine (open plus gated).
    pub(crate) fn waiting(&self) -> usize {
        self.arrivals.len() + self.gated.len()
    }
}

/// A sequence resident in the KV cache — the prefill/decode stages'
/// per-engine work set.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ActiveSeq {
    /// Index into the engine's record table.
    pub(crate) rec: usize,
    /// Prefill (or recompute) tokens still to stream through the pipeline.
    pub(crate) prefill_remaining: usize,
    /// Decode tokens emitted so far.
    pub(crate) decoded: usize,
    /// Monotone admission stamp; the eviction victim is the largest.
    pub(crate) admission_order: u64,
    /// Disaggregated prefill: the sequence completes (and exports its KV)
    /// when prefill finishes, emitting no decode tokens here.
    pub(crate) prefill_only: bool,
}

/// A request waiting for admission (fresh, evicted with progress, or an
/// imported-KV arrival waiting out its migration) — the admission stage's
/// typed event, queued in the engine's pending arena.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingReq {
    /// Index into the engine's record table.
    pub(crate) rec: usize,
    /// Decode tokens already emitted before an eviction (0 for fresh).
    pub(crate) decoded: usize,
    /// Earliest admission time: the arrival for local requests, the
    /// migration-completion instant for imported KV. Evicted requeues use
    /// the eviction clock (already in the past). Queue-wait accounting
    /// measures from this instant, so migration transit never counts as
    /// queueing.
    pub(crate) ready_s: f64,
    /// The sequence's KV was prefilled on another wafer: admission imports
    /// it (allocation without recompute). Cleared on eviction, because the
    /// migrated KV is lost and must be recomputed locally.
    pub(crate) imported: bool,
    /// Tokens of the import that actually travelled the link (the rest was
    /// deduplicated against this wafer's prefix cache at announce time).
    /// 0 for local requests.
    pub(crate) wire_tokens: usize,
    /// This entry re-entered the queue through an eviction: its admission
    /// charge counts as recompute.
    pub(crate) evicted: bool,
    /// Prefill-only service (disaggregated prefill wafer).
    pub(crate) prefill_only: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_trace::EventKind;

    #[test]
    fn every_lifecycle_event_kind_is_owned_by_exactly_one_stage() {
        // Coverage: the ownership table spans the closed taxonomy exactly.
        let mut owned: Vec<&str> = EVENT_OWNERS.iter().map(|&(n, _)| n).collect();
        owned.sort_unstable();
        let mut all: Vec<&str> = EventKind::ALL_NAMES.to_vec();
        all.sort_unstable();
        assert_eq!(owned, all, "the stage table must cover every event kind exactly once");
        // Uniqueness: no name appears under two stages.
        for (i, &(name, stage)) in EVENT_OWNERS.iter().enumerate() {
            for &(other, other_stage) in &EVENT_OWNERS[i + 1..] {
                assert!(name != other, "{name} owned by both {stage:?} and {other_stage:?}");
            }
        }
        // The lookup agrees with the table for every pinned name.
        for &(name, stage) in &EVENT_OWNERS {
            assert_eq!(event_kind(name), stage);
        }
    }

    #[test]
    #[should_panic(expected = "outside the closed taxonomy")]
    fn unknown_event_kinds_are_rejected() {
        event_kind("warp_core_breach");
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(Stage::name).collect();
        assert_eq!(names, vec!["arrival", "admission", "prefill", "migrate", "decode", "complete", "fault"]);
    }
}
