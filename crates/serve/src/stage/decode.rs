//! The decode stage: work selection over the active set and autoregressive
//! token growth. Owns the `decode_step` and `first_token` trace kinds.

use super::Stage;
use crate::engine::Engine;
use ouro_kvcache::KvError;
use ouro_trace::EventKind;

/// Work selection for one iteration: a chunk of prefill tokens per
/// prefilling sequence, one decode token per decoding sequence — all
/// interleaved in the same token-grained pipeline pass. Returns the step's
/// token count and wall-clock duration.
///
/// A step that moves `T` tokens with mean context `c̄` takes
/// `max(L(c̄), T · b(c̄))` seconds: with few tokens in flight the pipeline
/// drains before it refills, with many it streams one token per bottleneck
/// interval. The context accumulation is order-sensitive floating point
/// over the active set, so it stays one loop — splitting it per-stage
/// would reorder the sum and perturb every golden.
pub(crate) fn plan_step(e: &Engine) -> (usize, f64) {
    let mut step_tokens = 0usize;
    let mut ctx_sum = 0.0f64;
    for a in &e.active {
        let r = &e.records[a.rec];
        let resident = r.prompt_len + a.decoded;
        ctx_sum += resident as f64;
        if a.prefill_remaining > 0 {
            step_tokens += a.prefill_remaining.min(e.config.prefill_chunk);
        } else if !a.prefill_only && a.decoded < r.decode_len {
            step_tokens += 1;
        }
    }
    let mean_ctx = (ctx_sum / e.active.len() as f64).max(1.0) as usize;
    let pipeline_s = e.times.token_pipeline_latency_s(mean_ctx);
    let bottleneck_s = e.times.bottleneck_stage_s(mean_ctx);
    let step_s = if step_tokens == 0 {
        // Every resident sequence finished prefill with zero decode
        // tokens requested; charge one drain pass so completion time is
        // well defined.
        pipeline_s
    } else {
        pipeline_s.max(step_tokens as f64 * bottleneck_s)
    };
    (step_tokens, step_s)
}

/// Emits the step's `decode_step` event (one per iteration, covering the
/// whole interleaved batch).
pub(crate) fn emit_step(e: &mut Engine, end_s: f64, step_tokens: usize) {
    let batch = e.active.len();
    Stage::Decode.emit(&mut e.tracer, end_s, None, EventKind::DecodeStep { batch, tokens: step_tokens });
}

/// Advances active sequence `i` by one decode token (no-op for prefill-only
/// or finished sequences). A KV-growth failure marks the sequence for
/// eviction instead.
pub(crate) fn advance_one(e: &mut Engine, i: usize, end_s: f64, evicted_now: &mut Vec<usize>) {
    let a = e.active[i];
    if a.prefill_only {
        return; // completes in the Complete stage; decode happens on another wafer
    }
    let r = &e.records[a.rec];
    if a.decoded >= r.decode_len {
        return; // zero-decode request: completes in the Complete stage
    }
    match e.manager.append_tokens(a.rec as u64, 1) {
        Ok(()) => {
            e.active[i].decoded += 1;
            let rec = &mut e.records[a.rec];
            if rec.first_token_s.is_nan() {
                rec.first_token_s = end_s;
                let id = rec.id;
                Stage::Decode.emit(&mut e.tracer, end_s, Some(id), EventKind::FirstToken);
            }
        }
        Err(KvError::OutOfCapacity) => evicted_now.push(i),
        Err(err) => panic!("unexpected kv error during decode: {err}"),
    }
}
