//! The migrate stage: ships a finished prefill's KV across the inter-wafer
//! fabric to a decode wafer. Owns the `migrate_start`, `migrate_arrive`,
//! `kv_export` (emitted at the Complete-stage handoff) and `kv_import`
//! (emitted at the receiving engine's admission) trace kinds.
//!
//! The stage's in-flight queue is the imported subset of the decode
//! engines' pending arenas: announcing a migration submits a
//! [`crate::stage::PendingReq`] gated on the landing time, so the transfer
//! needs no extra state to be checkpointable.

use super::Stage;
use crate::engine::Admission;
use crate::report::Migration;
use crate::scenario::Driver;
use ouro_trace::EventKind;
use ouro_workload::Request;

/// Ships one finished prefill's KV to a decode wafer: places the
/// sequence (prefix-aware policies steer toward resident prefixes),
/// deduplicates the bytes already cached on the target, charges the
/// remaining transfer from the link model, and submits it for
/// imported-KV decode gated on the migration's landing time.
pub(crate) fn migrate(d: &mut Driver, from: usize, rec: usize, t_done: f64) {
    let record = d.engines[from].records()[rec];
    let mut request = Request::new(record.id, record.prompt_len, record.decode_len);
    if let Some(p) = record.shared_prefix {
        request = request.with_shared_prefix(p.group, p.tokens);
    }
    let decode = &d.engines[d.prefill_wafers..];
    let to = d.placement.place(decode, from, d.prefill_wafers, &request);
    assert!(to < decode.len(), "placement returned wafer {to} of a {}-wafer pool", decode.len());
    // Bytes already resident on the target's prefix cache never touch
    // the wire; the imported submission performs the identical lookup
    // at this same instant, so the wire accounting matches.
    let deduped = decode[to].prefix_cached_tokens(&request).min(record.prompt_len);
    let wire_tokens = record.prompt_len - deduped;
    let bytes = wire_tokens as u64 * d.kv_bytes_per_token;
    let hops = (d.prefill_wafers - from) + to;
    let arrive_s = t_done + d.link.transfer_time_s(bytes, hops);
    let global_to = d.prefill_wafers + to;
    Stage::Migrate.emit_for(
        &mut d.tracer,
        from,
        t_done,
        Some(record.id),
        EventKind::MigrateStart { to_wafer: global_to, bytes },
    );
    Stage::Migrate.emit_for(
        &mut d.tracer,
        global_to,
        arrive_s,
        Some(record.id),
        EventKind::MigrateArrive { from_wafer: from, bytes },
    );
    d.engines[global_to].submit_with(
        request,
        record.arrival_s,
        Admission::Imported { ready_s: arrive_s },
        record.id,
        global_to,
    );
    d.refresh_engine(global_to);
    d.migrations.push(Migration {
        id: record.id,
        from_wafer: from,
        to_wafer: global_to,
        tokens: wire_tokens as u64,
        deduped_tokens: deduped as u64,
        bytes,
        start_s: t_done,
        arrive_s,
        wafer_hops: hops,
        energy_j: d.link.transfer_energy_j(bytes, hops),
    });
}
