//! The complete stage: retires finished sequences from the active set.
//! Owns the `complete` trace kind (a disaggregated prefill's KV handoff —
//! the `kv_export` kind — belongs to the migrate stage, emitted here at
//! the handoff point).

use super::Stage;
use crate::engine::{Completion, Engine};
use ouro_trace::EventKind;

/// Retires every completed sequence at `end_s`: a prefill-only completion
/// exports its KV for migration, a full completion releases it. Returns
/// the completions stamped with their times.
pub(crate) fn retire(e: &mut Engine, end_s: f64) -> Vec<Completion> {
    let mut completions = Vec::new();
    let records = &mut e.records;
    let manager = &mut e.manager;
    let tracer = &mut e.tracer;
    e.active.retain(|a| {
        let r = &mut records[a.rec];
        let done = a.prefill_remaining == 0 && (a.prefill_only || a.decoded >= r.decode_len);
        if done {
            r.completed_s = end_s;
            if a.prefill_only {
                // A disaggregated prefill hands its KV off instead of
                // discarding it; the export counter feeds migration
                // byte accounting.
                manager.export_sequence(a.rec as u64).expect("prefill-only sequence is resident");
                Stage::Migrate.emit(tracer, end_s, Some(r.id), EventKind::KvExport { tokens: r.prompt_len });
            } else {
                manager.release(a.rec as u64);
                Stage::Complete.emit(tracer, end_s, Some(r.id), EventKind::Complete);
            }
            completions.push((a.rec, end_s));
            false
        } else {
            true
        }
    });
    completions
}
