//! The prefill stage: streams prompt (or recompute) chunks through the
//! token-grained pipeline. Owns the `prefill_start` (emitted at admission,
//! where the charge is computed) and `prefill_end` trace kinds.

use super::Stage;
use crate::engine::Engine;
use ouro_trace::EventKind;

/// Advances the prefill of active sequence `i` by one chunk if it is still
/// prefilling; returns whether the prefill stage handled the sequence this
/// iteration (the decode stage then skips it).
pub(crate) fn advance_one(e: &mut Engine, i: usize, end_s: f64) -> bool {
    let a = e.active[i];
    if a.prefill_remaining == 0 {
        return false;
    }
    let left = a.prefill_remaining.saturating_sub(e.config.prefill_chunk);
    e.active[i].prefill_remaining = left;
    if left == 0 {
        Stage::Prefill.emit(&mut e.tracer, end_s, Some(e.records[a.rec].id), EventKind::PrefillEnd);
    }
    true
}
