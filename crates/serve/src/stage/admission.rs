//! The admission stage: FCFS continuous batching over the pending arena,
//! with the offline scheduler's eviction rules.
//!
//! Consumes [`crate::stage::PendingReq`] events from the engine's pending
//! arena and produces residency ([`crate::stage::ActiveSeq`] entries in the
//! active set). Capacity exhaustion flows the other way: eviction returns a
//! resident sequence to the *front* of the pending arena with its progress.
//! Owns the `admission`, `drop` and `evict` trace kinds.

use super::{ActiveSeq, PendingReq, Stage};
use crate::engine::Engine;
use ouro_kvcache::KvError;
use ouro_trace::EventKind;

/// Tokens a pending request will occupy at admission (prompt plus any
/// decode progress that survives an eviction).
pub(crate) fn resident_demand(e: &Engine, p: &PendingReq) -> usize {
    e.records[p.rec].prompt_len + p.decoded
}

/// Admission phase of one iteration: FCFS continuous batching with the
/// offline scheduler's eviction rules.
pub(crate) fn admit_waiting(e: &mut Engine) {
    // Nothing resident means nothing can complete, so a suspension would
    // deadlock; lift it.
    if e.active.is_empty() {
        e.admission_suspended = false;
    }
    while !e.admission_suspended && e.active.len() < e.config.max_batch {
        // Earliest-submitted *admissible* request. Readiness is monotone
        // with queue order for local arrivals, but not for imported KV
        // (a small migration submitted later can land before a large one
        // submitted earlier), so an unready head must not block a landed
        // request behind it. The arena's readiness/rank heaps answer
        // this in O(log n) where the deque took a linear scan.
        let Some((slot, front)) = e.pending.peek_ready(e.clock_s) else {
            break; // nothing has arrived (or finished migrating) yet
        };
        #[cfg(debug_assertions)]
        {
            // Differential check against the old FCFS position scan.
            let naive =
                e.pending.ordered().iter().find(|&&(ready, _)| ready <= e.clock_s).map(|&(_, p)| p.rec);
            debug_assert_eq!(
                Some(front.rec),
                naive,
                "arena admission pick diverged from the naive FCFS scan"
            );
        }
        let tokens = resident_demand(e, &front);
        let seq_id = front.rec as u64;
        let prefix = if e.config.prefix_caching {
            e.records[front.rec].shared_prefix.map(|p| (p.group, p.tokens))
        } else {
            None
        };
        let admitted = if front.imported {
            e.manager.import_with_prefix(seq_id, tokens, prefix, front.wire_tokens.min(tokens))
        } else {
            e.manager.admit_with_prefix(seq_id, tokens, prefix)
        };
        match admitted {
            Ok(cached) => {
                e.pending.remove(slot);
                e.pending_tokens -= tokens;
                e.pending_wire_tokens -= front.wire_tokens;
                e.stats.admissions += 1;
                // Prefill is charged only for tokens that are neither in
                // the prefix cache nor freshly arrived over the link.
                // (An import can still owe recompute if the chain it was
                // deduplicated against died while the bytes were in
                // flight.)
                let materialized = if front.imported { front.wire_tokens + cached } else { cached };
                let prefill_charge = tokens.saturating_sub(materialized);
                e.stats.prefilled_tokens += prefill_charge as u64;
                e.stats.cached_prefix_tokens += cached as u64;
                if cached > 0 {
                    e.stats.prefix_hits += 1;
                }
                if front.evicted {
                    e.stats.recomputed_tokens += prefill_charge as u64;
                }
                let r = &mut e.records[front.rec];
                if r.admitted_s.is_nan() {
                    r.admitted_s = e.clock_s;
                }
                r.queue_wait_s += (e.clock_s - front.ready_s).max(0.0);
                r.cached_prefix_tokens = cached;
                let req = Some(r.id);
                Stage::Admission.emit(
                    &mut e.tracer,
                    e.clock_s,
                    req,
                    EventKind::Admission { cached_tokens: cached, recompute: front.evicted },
                );
                if front.imported {
                    Stage::Migrate.emit(
                        &mut e.tracer,
                        e.clock_s,
                        req,
                        EventKind::KvImport { wire_tokens: front.wire_tokens, deduped_tokens: cached },
                    );
                }
                if prefill_charge > 0 {
                    Stage::Prefill.emit(
                        &mut e.tracer,
                        e.clock_s,
                        req,
                        EventKind::PrefillStart { tokens: prefill_charge },
                    );
                }
                e.active.push(ActiveSeq {
                    rec: front.rec,
                    prefill_remaining: prefill_charge,
                    decoded: front.decoded,
                    admission_order: e.order_counter,
                    prefill_only: front.prefill_only,
                });
                e.order_counter += 1;
            }
            Err(KvError::OutOfCapacity) => {
                e.manager.release(seq_id);
                if e.active.is_empty() {
                    // Even an empty cache cannot hold it: drop to
                    // guarantee progress (the offline scheduler does the
                    // same).
                    e.pending.remove(slot);
                    e.pending_tokens -= tokens;
                    e.pending_wire_tokens -= front.wire_tokens;
                    e.stats.dropped += 1;
                    if front.imported {
                        e.stats.dropped_imported_tokens += front.wire_tokens as u64;
                    }
                    Stage::Admission.emit(
                        &mut e.tracer,
                        e.clock_s,
                        Some(e.records[front.rec].id),
                        EventKind::Drop,
                    );
                    continue;
                }
                evict_most_recent(e);
                e.admission_suspended = true;
                break;
            }
            Err(err) => panic!("unexpected kv error during admission: {err}"),
        }
    }
}

/// Evicts the most recently admitted sequence back to the queue front.
pub(crate) fn evict_most_recent(e: &mut Engine) {
    let victim_pos = e
        .active
        .iter()
        .enumerate()
        .max_by_key(|(_, a)| a.admission_order)
        .map(|(i, _)| i)
        .expect("evict_most_recent requires a resident sequence");
    let victim = e.active.swap_remove(victim_pos);
    requeue_evicted(e, victim, false);
}

/// Shared eviction bookkeeping: the victim's resident KV (prompt plus
/// decode progress) is released and the request returns to the *front*
/// of the queue keeping its progress. The recompute charge lands at
/// re-admission (see [`crate::engine::EngineStats::recomputed_tokens`]),
/// so a victim touched by both the capacity path and the fault path in
/// one step is counted once, when the replay is actually scheduled.
pub(crate) fn requeue_evicted(e: &mut Engine, victim: ActiveSeq, fault: bool) {
    let resident = e.records[victim.rec].prompt_len + victim.decoded;
    e.stats.evictions += 1;
    e.records[victim.rec].evictions += 1;
    e.manager.release(victim.rec as u64);
    Stage::Admission.emit(
        &mut e.tracer,
        e.clock_s,
        Some(e.records[victim.rec].id),
        EventKind::Evict { resident_tokens: resident, fault },
    );
    // An evicted import loses its migrated KV: it re-enters as a local
    // recompute (imported = false). The eviction clock is already in the
    // past, so readiness never gates a requeue.
    e.pending.push_front(
        e.clock_s,
        PendingReq {
            rec: victim.rec,
            decoded: victim.decoded,
            ready_s: e.clock_s,
            imported: false,
            wire_tokens: 0,
            evicted: true,
            prefill_only: victim.prefill_only,
        },
    );
    e.pending_tokens += resident;
}
