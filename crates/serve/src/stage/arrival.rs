//! The arrival stage: routes the next open arrival onto an entry wafer and
//! feeds closed-loop releases back into the arrival queue. Owns the
//! `arrival` trace kind.

use super::{ArrivalEvent, Stage, StageQueues};
use crate::engine::Admission;
use crate::scenario::Driver;
use ouro_trace::EventKind;
use ouro_workload::TimedTrace;
use std::time::Instant;

/// Routes the front arrival of `q` (the caller has established one exists
/// and is due) onto an entry wafer: colocated deployments submit for full
/// local service, disaggregated ones for prefill-only service.
pub(crate) fn route_next(d: &mut Driver, timed: &TimedTrace, q: &mut StageQueues) {
    // audit: allow(wall-clock, "profile-gated self-timing; elapsed wall time feeds LoopProfile only, never simulated state")
    let t0 = d.profile.is_some().then(Instant::now);
    let ev = q.arrivals.pop_front().expect("peeked above");
    let request = timed.arrivals[ev.index].request;
    let entry = d.entry_len();
    let wafer = d.router.route(&d.engines[..entry], &request);
    assert!(wafer < entry, "router returned wafer {wafer} of an {entry}-wafer pool");
    Stage::Arrival.emit_for(
        &mut d.tracer,
        wafer,
        ev.at_s,
        Some(ev.index),
        EventKind::Arrival { prompt_tokens: request.prompt_len, decode_tokens: request.decode_len },
    );
    let admission = if d.disagg { Admission::PrefillOnly } else { Admission::Local };
    d.engines[wafer].submit_with(request, ev.at_s, admission, ev.index, wafer);
    d.refresh_engine(wafer);
    if let (Some(p), Some(t0)) = (d.profile.as_mut(), t0) {
        p.arrivals.add(t0.elapsed());
    }
    d.telemetry_tick();
}

/// Feeds one closed-loop release back into the sorted arrival queue after a
/// completion at `t_done`: the next gated request (if any) is released
/// after an exponential think time drawn from the queues' think stream.
pub(crate) fn release_gated(q: &mut StageQueues, t_done: f64) {
    let Some(next) = q.gated.pop_front() else { return };
    let think: f64 = if q.think_time_s > 0.0 {
        ouro_workload::arrival::exponential(&mut q.think_rng, 1.0 / q.think_time_s)
    } else {
        0.0
    };
    let release = t_done + think;
    // Released arrivals are appended in completion order; engine clocks
    // only move forward, so later releases sort later.
    let pos = q.arrivals.partition_point(|ev| ev.at_s <= release);
    q.arrivals.insert(pos, ArrivalEvent { at_s: release, index: next });
}
