//! The single-wafer serving engine: continuous batching with chunked prefill
//! over the distributed KV cache.
//!
//! The engine advances in *iterations* (steps), the unit of continuous
//! batching: at each step boundary it admits waiting requests FCFS into the
//! KV cache under the same admission/eviction rules as the offline
//! [`ouro_kvcache::scheduler`] (most-recently-admitted eviction on capacity
//! exhaustion, admission suspended until a completion, anti-thrashing
//! threshold inside the manager), then advances every resident sequence by
//! one unit of work — a chunk of prefill tokens or one decode token — and
//! charges the step's wall-clock duration from the hardware-derived
//! [`HwStageTimes`].
//!
//! A step that moves `T` tokens through the token-grained pipeline with mean
//! context `c̄` takes `max(L(c̄), T · b(c̄))` seconds, where `L` is the full
//! pipeline latency of one token and `b` the bottleneck stage interval: with
//! few tokens in flight the pipeline drains before it refills (the
//! autoregressive limit of §6.2), with many it streams one token per
//! bottleneck interval.
//!
//! One deliberate divergence from the offline scheduler: an evicted sequence
//! keeps its generation progress and only *recomputes* its resident KV
//! (prompt plus tokens decoded so far) when re-admitted, the way a serving
//! system replays a prefix. The offline replayer instead restarts decode from
//! scratch, which would corrupt latency accounting here.

use crate::metrics::RequestRecord;
use ouro_kvcache::{KvError, KvManager, KvManagerConfig};
use ouro_sim::HwStageTimes;
use ouro_workload::Request;
use std::collections::VecDeque;

/// Tuning knobs of one engine (one wafer's replica).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Maximum number of simultaneously resident sequences (the KV cache
    /// usually saturates first).
    pub max_batch: usize,
    /// Prefill tokens processed per sequence per iteration (chunked prefill,
    /// so long prompts cannot starve decode steps).
    pub prefill_chunk: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig { max_batch: 4096, prefill_chunk: 128 }
    }
}

/// Raw counters exposed by one engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Admissions into the KV cache, including re-admissions after eviction.
    pub admissions: u64,
    /// Capacity evictions.
    pub evictions: u64,
    /// Tokens recomputed because their sequence was evicted mid-flight.
    pub recomputed_tokens: u64,
    /// Requests dropped because they cannot fit in an empty cache.
    pub dropped: u64,
    /// Continuous-batching iterations executed.
    pub steps: u64,
    /// Peak resident sequences.
    pub peak_resident: usize,
}

/// A sequence resident in the KV cache.
#[derive(Debug, Clone, Copy)]
struct ActiveSeq {
    /// Index into the engine's record table.
    rec: usize,
    /// Prefill (or recompute) tokens still to stream through the pipeline.
    prefill_remaining: usize,
    /// Decode tokens emitted so far.
    decoded: usize,
    /// Monotone admission stamp; the eviction victim is the largest.
    admission_order: u64,
}

/// A request waiting for admission (fresh, or evicted with progress).
#[derive(Debug, Clone, Copy)]
struct PendingReq {
    rec: usize,
    /// Decode tokens already emitted before an eviction (0 for fresh).
    decoded: usize,
}

/// A request completion event: `(record index, completion time)`.
pub type Completion = (usize, f64);

/// One wafer's online serving engine.
#[derive(Debug, Clone)]
pub struct Engine {
    times: HwStageTimes,
    manager: KvManager,
    config: EngineConfig,
    records: Vec<RequestRecord>,
    pending: VecDeque<PendingReq>,
    active: Vec<ActiveSeq>,
    admission_suspended: bool,
    clock_s: f64,
    busy_s: f64,
    /// Token-demand of the pending queue (prompt + decoded per request),
    /// maintained incrementally for the `LeastKvLoad` router.
    pending_tokens: usize,
    stats: EngineStats,
    order_counter: u64,
}

impl Engine {
    /// Builds an engine over a fresh KV manager.
    ///
    /// # Errors
    ///
    /// Propagates [`KvError::NoKvCores`] from the manager.
    pub fn new(times: HwStageTimes, kv: KvManagerConfig, config: EngineConfig) -> Result<Engine, KvError> {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.prefill_chunk > 0, "prefill_chunk must be positive");
        Ok(Engine {
            times,
            manager: KvManager::new(kv)?,
            config,
            records: Vec::new(),
            pending: VecDeque::new(),
            active: Vec::new(),
            admission_suspended: false,
            clock_s: 0.0,
            busy_s: 0.0,
            pending_tokens: 0,
            stats: EngineStats::default(),
            order_counter: 0,
        })
    }

    /// The engine's simulated clock.
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Seconds spent with at least one token in flight.
    pub fn busy_s(&self) -> f64 {
        self.busy_s
    }

    /// Whether the engine has queued or resident work.
    pub fn has_work(&self) -> bool {
        !self.pending.is_empty() || !self.active.is_empty()
    }

    /// Requests waiting for admission.
    pub fn queue_len(&self) -> usize {
        self.pending.len()
    }

    /// Sequences resident in the KV cache.
    pub fn resident(&self) -> usize {
        self.active.len()
    }

    /// KV pressure for routing: resident plus queued token demand relative to
    /// cache capacity (may exceed 1 under overload).
    pub fn kv_load(&self) -> f64 {
        let demand = self.manager.used_tokens() + self.pending_tokens;
        demand as f64 / self.manager.capacity_tokens().max(1) as f64
    }

    /// Raw counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Per-request lifecycle records (indexed by submission order).
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Submits a request arriving at `arrival_s`, tagged with the global id
    /// and wafer index for reporting. Returns the engine-local record index.
    pub fn submit(&mut self, request: Request, arrival_s: f64, id: usize, wafer: usize) -> usize {
        if !self.has_work() {
            // An idle engine fast-forwards to the arrival.
            self.clock_s = self.clock_s.max(arrival_s);
        }
        let rec = self.records.len();
        self.records.push(RequestRecord {
            id,
            wafer,
            prompt_len: request.prompt_len,
            decode_len: request.decode_len,
            arrival_s,
            admitted_s: f64::NAN,
            first_token_s: f64::NAN,
            completed_s: f64::NAN,
            evictions: 0,
        });
        self.pending.push_back(PendingReq { rec, decoded: 0 });
        self.pending_tokens += request.prompt_len;
        rec
    }

    /// Tokens a pending request will occupy at admission (prompt plus any
    /// decode progress that survives an eviction).
    fn resident_demand(&self, p: &PendingReq) -> usize {
        self.records[p.rec].prompt_len + p.decoded
    }

    /// Admission phase of one iteration: FCFS continuous batching with the
    /// offline scheduler's eviction rules.
    fn admit_waiting(&mut self) {
        // Nothing resident means nothing can complete, so a suspension would
        // deadlock; lift it.
        if self.active.is_empty() {
            self.admission_suspended = false;
        }
        while !self.admission_suspended && self.active.len() < self.config.max_batch {
            let Some(&front) = self.pending.front() else { break };
            if self.records[front.rec].arrival_s > self.clock_s {
                break; // not arrived yet (engine clock lags a routed burst)
            }
            let tokens = self.resident_demand(&front);
            let seq_id = front.rec as u64;
            match self.manager.admit(seq_id, tokens) {
                Ok(()) => {
                    self.pending.pop_front();
                    self.pending_tokens -= tokens;
                    self.stats.admissions += 1;
                    let r = &mut self.records[front.rec];
                    if r.admitted_s.is_nan() {
                        r.admitted_s = self.clock_s;
                    }
                    self.active.push(ActiveSeq {
                        rec: front.rec,
                        prefill_remaining: tokens,
                        decoded: front.decoded,
                        admission_order: self.order_counter,
                    });
                    self.order_counter += 1;
                }
                Err(KvError::OutOfCapacity) => {
                    self.manager.release(seq_id);
                    if self.active.is_empty() {
                        // Even an empty cache cannot hold it: drop to
                        // guarantee progress (the offline scheduler does the
                        // same).
                        self.pending.pop_front();
                        self.pending_tokens -= tokens;
                        self.stats.dropped += 1;
                        continue;
                    }
                    self.evict_most_recent();
                    self.admission_suspended = true;
                    break;
                }
                Err(e) => panic!("unexpected kv error during admission: {e}"),
            }
        }
    }

    /// Evicts the most recently admitted sequence back to the queue front.
    fn evict_most_recent(&mut self) {
        let victim_pos = self
            .active
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| a.admission_order)
            .map(|(i, _)| i)
            .expect("evict_most_recent requires a resident sequence");
        let victim = self.active.swap_remove(victim_pos);
        self.requeue_evicted(victim);
    }

    /// Shared eviction bookkeeping: the victim's resident KV (prompt plus
    /// decode progress) is released and charged as recompute work, and the
    /// request returns to the *front* of the queue keeping its progress.
    fn requeue_evicted(&mut self, victim: ActiveSeq) {
        let resident = self.records[victim.rec].prompt_len + victim.decoded;
        self.stats.evictions += 1;
        self.stats.recomputed_tokens += resident as u64;
        self.records[victim.rec].evictions += 1;
        self.manager.release(victim.rec as u64);
        self.pending.push_front(PendingReq { rec: victim.rec, decoded: victim.decoded });
        self.pending_tokens += resident;
    }

    /// Runs one continuous-batching iteration: admit, move one unit of work
    /// per resident sequence, advance the clock, retire completions.
    ///
    /// Returns the completions that occurred, stamped with their times.
    pub fn step(&mut self) -> Vec<Completion> {
        // An empty batch with a future queue head means the engine is idle:
        // fast-forward to the next arrival.
        if self.active.is_empty() {
            if let Some(front) = self.pending.front() {
                let arr = self.records[front.rec].arrival_s;
                if arr > self.clock_s {
                    self.clock_s = arr;
                }
            }
        }
        self.admit_waiting();
        if self.active.is_empty() {
            return Vec::new();
        }

        self.stats.steps += 1;
        self.stats.peak_resident = self.stats.peak_resident.max(self.active.len());

        // Work selection: a chunk of prefill tokens per prefilling sequence,
        // one decode token per decoding sequence — all interleaved in the
        // same token-grained pipeline pass.
        let mut step_tokens = 0usize;
        let mut ctx_sum = 0.0f64;
        for a in &self.active {
            let r = &self.records[a.rec];
            let resident = r.prompt_len + a.decoded;
            ctx_sum += resident as f64;
            if a.prefill_remaining > 0 {
                step_tokens += a.prefill_remaining.min(self.config.prefill_chunk);
            } else if a.decoded < r.decode_len {
                step_tokens += 1;
            }
        }
        let mean_ctx = (ctx_sum / self.active.len() as f64).max(1.0) as usize;
        let pipeline_s = self.times.token_pipeline_latency_s(mean_ctx);
        let bottleneck_s = self.times.bottleneck_stage_s(mean_ctx);
        let step_s = if step_tokens == 0 {
            // Every resident sequence finished prefill with zero decode
            // tokens requested; charge one drain pass so completion time is
            // well defined.
            pipeline_s
        } else {
            pipeline_s.max(step_tokens as f64 * bottleneck_s)
        };
        let end_s = self.clock_s + step_s;
        self.busy_s += step_s;

        // Advance every resident sequence by its unit of work.
        let mut evicted_now: Vec<usize> = Vec::new();
        for i in 0..self.active.len() {
            let a = self.active[i];
            if a.prefill_remaining > 0 {
                self.active[i].prefill_remaining =
                    a.prefill_remaining.saturating_sub(self.config.prefill_chunk);
                continue;
            }
            let r = &self.records[a.rec];
            if a.decoded >= r.decode_len {
                continue; // zero-decode request: completes below
            }
            match self.manager.append_tokens(a.rec as u64, 1) {
                Ok(()) => {
                    self.active[i].decoded += 1;
                    let rec = &mut self.records[a.rec];
                    if rec.first_token_s.is_nan() {
                        rec.first_token_s = end_s;
                    }
                }
                Err(KvError::OutOfCapacity) => evicted_now.push(i),
                Err(e) => panic!("unexpected kv error during decode: {e}"),
            }
        }
        // Decode-growth failures evict (highest index first so swap_remove
        // keeps earlier indices valid).
        evicted_now.sort_unstable_by(|a, b| b.cmp(a));
        for i in evicted_now {
            let victim = self.active.swap_remove(i);
            self.requeue_evicted(victim);
        }

        // Retire completed sequences; a completion lifts the admission
        // suspension.
        self.clock_s = end_s;
        let mut completions = Vec::new();
        let records = &mut self.records;
        let manager = &mut self.manager;
        self.active.retain(|a| {
            let r = &mut records[a.rec];
            if a.prefill_remaining == 0 && a.decoded >= r.decode_len {
                r.completed_s = end_s;
                manager.release(a.rec as u64);
                completions.push((a.rec, end_s));
                false
            } else {
                true
            }
        });
        if !completions.is_empty() {
            self.admission_suspended = false;
        }
        completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_hw::{CimCore, CoreId};
    use ouro_model::zoo;
    use ouro_noc::CommCost;

    fn times() -> HwStageTimes {
        HwStageTimes {
            model: zoo::llama_13b(),
            core: CimCore::paper(),
            cores_per_stage: [20, 0, 0, 7, 27, 27],
            comm: CommCost::paper(),
            mean_hops: 3.0,
            inter_wafer_crossings_per_token: 0.0,
        }
    }

    fn kv(cores: usize) -> KvManagerConfig {
        KvManagerConfig::new((0..cores).map(CoreId).collect(), 1, 128)
    }

    fn engine(cores: usize) -> Engine {
        Engine::new(times(), kv(cores), EngineConfig::default()).unwrap()
    }

    #[test]
    fn single_request_runs_to_completion() {
        let mut e = engine(8);
        e.submit(Request::new(0, 64, 8), 0.5, 0, 0);
        let mut completions = Vec::new();
        while e.has_work() {
            completions.extend(e.step());
        }
        assert_eq!(completions.len(), 1);
        let r = &e.records()[0];
        assert!(r.admitted_s >= 0.5);
        assert!(r.first_token_s > r.admitted_s, "prefill must take time");
        assert!(r.completed_s > r.first_token_s);
        assert_eq!(e.stats().dropped, 0);
        assert_eq!(e.stats().evictions, 0);
        assert!(e.busy_s() > 0.0);
    }

    #[test]
    fn idle_engine_fast_forwards_to_arrivals() {
        let mut e = engine(8);
        e.submit(Request::new(0, 32, 4), 10.0, 0, 0);
        assert!(e.clock_s() >= 10.0);
        while e.has_work() {
            e.step();
        }
        let r = &e.records()[0];
        assert!(r.completed_s > 10.0);
        // Utilization excludes the idle gap before the arrival.
        assert!(e.busy_s() < r.completed_s - 5.0);
    }

    #[test]
    fn later_arrival_waits_for_its_timestamp() {
        let mut e = engine(8);
        e.submit(Request::new(0, 32, 64), 0.0, 0, 0);
        e.submit(Request::new(1, 32, 4), 1e9, 1, 0);
        // The first request completes long before the second arrives.
        let mut steps = 0;
        while e.records()[0].completed_s.is_nan() && steps < 10_000 {
            e.step();
            steps += 1;
        }
        assert!(e.records()[0].completed_s < 1e9);
        assert!(e.records()[1].admitted_s.is_nan());
        while e.has_work() {
            e.step();
        }
        assert!(e.records()[1].admitted_s >= 1e9);
    }

    #[test]
    fn overload_evicts_but_conserves_requests() {
        // A 2-core cache holds ~32k tokens; 40 requests of 2k tokens each
        // demand ~80k, so decode growth must evict.
        let mut e = engine(2);
        for i in 0..40 {
            e.submit(Request::new(i, 1000, 1000), 0.0, i, 0);
        }
        let mut completions = 0;
        let mut guard = 0;
        while e.has_work() && guard < 2_000_000 {
            completions += e.step().len();
            guard += 1;
        }
        assert!(guard < 2_000_000, "engine must make progress under overload");
        let done = e.records().iter().filter(|r| r.completed()).count();
        assert_eq!(done, completions);
        assert_eq!(done + e.stats().dropped as usize, 40, "every request completes or is dropped");
        assert!(e.stats().evictions > 0, "a tiny cache must evict under this load");
        assert!(e.stats().recomputed_tokens > 0);
    }

    #[test]
    fn eviction_preserves_decode_progress() {
        let mut e = engine(2);
        for i in 0..40 {
            e.submit(Request::new(i, 800, 800), 0.0, i, 0);
        }
        while e.has_work() {
            e.step();
        }
        let evicted: Vec<&RequestRecord> =
            e.records().iter().filter(|r| r.evictions > 0 && r.completed()).collect();
        assert!(!evicted.is_empty(), "this workload must evict at least one request");
        for r in evicted {
            // First token precedes completion even across evictions, and is
            // never re-emitted (monotone record).
            assert!(r.first_token_s <= r.completed_s);
        }
    }

    #[test]
    fn oversized_request_is_dropped_not_spun_on() {
        let mut e = engine(2);
        let cap = 100_000; // far beyond two cores of KV
        e.submit(Request::new(0, cap, 4), 0.0, 0, 0);
        e.submit(Request::new(1, 64, 4), 0.0, 1, 0);
        while e.has_work() {
            e.step();
        }
        assert_eq!(e.stats().dropped, 1);
        assert!(e.records()[1].completed());
    }

    #[test]
    fn zero_decode_requests_complete_after_prefill() {
        let mut e = engine(8);
        e.submit(Request::new(0, 128, 0), 0.0, 0, 0);
        while e.has_work() {
            e.step();
        }
        let r = &e.records()[0];
        assert!(r.completed());
        assert!(r.first_token_s.is_nan(), "no decode token is ever emitted");
        assert!(r.completed_s > 0.0);
    }

    #[test]
    fn bigger_batches_run_more_tokens_per_step() {
        // With 8 identical requests resident, steady-state decode steps move
        // 8 tokens and so take at least as long as single-request steps, but
        // less than 8x (pipeline overlap).
        let run = |n: usize| -> f64 {
            let mut e = engine(16);
            for i in 0..n {
                e.submit(Request::new(i, 32, 64), 0.0, i, 0);
            }
            while e.has_work() {
                e.step();
            }
            e.records().iter().map(|r| r.completed_s).fold(0.0, f64::max)
        };
        let t1 = run(1);
        let t8 = run(8);
        assert!(t8 >= t1, "more work cannot finish earlier");
        assert!(t8 < 8.0 * t1, "continuous batching must overlap sequences, {t8} vs {t1}");
    }

    #[test]
    fn kv_load_tracks_queue_and_residency() {
        let mut e = engine(4);
        assert_eq!(e.kv_load(), 0.0);
        e.submit(Request::new(0, 512, 64), 0.0, 0, 0);
        let queued = e.kv_load();
        assert!(queued > 0.0, "queued demand counts toward load");
        e.step();
        assert!(e.resident() == 1);
        assert!(e.kv_load() > 0.0);
    }
}
