//! The single-wafer serving engine: continuous batching with chunked prefill
//! over the distributed KV cache.
//!
//! The engine advances in *iterations* (steps), the unit of continuous
//! batching: at each step boundary it admits waiting requests FCFS into the
//! KV cache under the same admission/eviction rules as the offline
//! [`ouro_kvcache::scheduler`] (most-recently-admitted eviction on capacity
//! exhaustion, admission suspended until a completion, anti-thrashing
//! threshold inside the manager), then advances every resident sequence by
//! one unit of work — a chunk of prefill tokens or one decode token — and
//! charges the step's wall-clock duration from the hardware-derived
//! [`HwStageTimes`].
//!
//! The per-stage logic lives in [`crate::stage`]: [`Engine::step`] is the
//! orchestrator that sequences the Admission → Prefill/Decode → Complete
//! stages over this wafer's queues. Prefill and decode advance in a single
//! interleaved pass — a continuous-batching iteration moves prefill chunks
//! and decode tokens through the *same* pipeline pass, and their trace
//! events (`prefill_end`, `first_token`) interleave in active-set order.
//!
//! A step that moves `T` tokens through the token-grained pipeline with mean
//! context `c̄` takes `max(L(c̄), T · b(c̄))` seconds, where `L` is the full
//! pipeline latency of one token and `b` the bottleneck stage interval: with
//! few tokens in flight the pipeline drains before it refills (the
//! autoregressive limit of §6.2), with many it streams one token per
//! bottleneck interval.
//!
//! One deliberate divergence from the offline scheduler: an evicted sequence
//! keeps its generation progress and only *recomputes* its resident KV
//! (prompt plus tokens decoded so far) when re-admitted, the way a serving
//! system replays a prefix. The offline replayer instead restarts decode from
//! scratch, which would corrupt latency accounting here.

use crate::arena::IndexQueue;
use crate::metrics::RequestRecord;
use crate::stage::{self, ActiveSeq, PendingReq, Stage};
use ouro_kvcache::{KvError, KvManager, KvManagerConfig, KvTransferStats};
use ouro_sim::HwStageTimes;
use ouro_trace::{EventKind, Tracer};
use ouro_workload::Request;

/// Tuning knobs of one engine (one wafer's replica).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Maximum number of simultaneously resident sequences (the KV cache
    /// usually saturates first).
    pub max_batch: usize,
    /// Prefill tokens processed per sequence per iteration (chunked prefill,
    /// so long prompts cannot starve decode steps).
    pub prefill_chunk: usize,
    /// Shared-prefix KV reuse: requests tagged with a
    /// [`ouro_workload::SharedPrefix`] share the whole-block portion of
    /// their common prompt prefix in the cache and are charged prefill only
    /// for the uncached suffix. Off turns every prompt cold (the ablation
    /// baseline); untagged requests behave identically either way.
    pub prefix_caching: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig { max_batch: 4096, prefill_chunk: 128, prefix_caching: true }
    }
}

/// Raw counters exposed by one engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Admissions into the KV cache, including re-admissions after eviction.
    pub admissions: u64,
    /// Capacity evictions.
    pub evictions: u64,
    /// Prefill tokens charged at *re-admissions* of previously evicted
    /// sequences — the replay cost of rebuilding lost KV. Charged at the
    /// single point where the recompute work is actually scheduled (the
    /// re-admission), so a victim evicted by the capacity path and the
    /// fault path in the same step can never be double-counted, and a
    /// prefix-cache hit on re-admission reduces the charge to the tokens
    /// genuinely recomputed.
    pub recomputed_tokens: u64,
    /// Tokens charged as prefill or recompute work across all admissions.
    pub prefilled_tokens: u64,
    /// Prompt tokens served from the shared-prefix cache (prefill skipped).
    pub cached_prefix_tokens: u64,
    /// Admissions whose prefix lookup returned a non-empty cached prefix.
    pub prefix_hits: u64,
    /// Requests dropped because they cannot fit in an empty cache.
    pub dropped: u64,
    /// Tokens of migrated KV discarded because the imported request was
    /// dropped at admission (its prompt alone exceeds an empty cache).
    pub dropped_imported_tokens: u64,
    /// Continuous-batching iterations executed.
    pub steps: u64,
    /// Peak resident sequences.
    pub peak_resident: usize,
    /// Runtime core faults absorbed by this wafer.
    pub faults: u64,
    /// Sequences evicted because a fault took their KV core (a subset of
    /// `evictions`).
    pub fault_evicted_seqs: u64,
    /// Token slots of KV lost to faulted cores (recomputed on re-admission).
    pub fault_evicted_tokens: u64,
    /// Wall-clock spent stalled in replacement-chain remaps, charged to
    /// every in-flight request on the wafer.
    pub stall_s: f64,
}

/// What one runtime fault did to this wafer's engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineFaultImpact {
    /// Flat index of the KV core the manager marked failed.
    pub kv_core_index: usize,
    /// Sequences evicted (and re-enqueued for recompute) because their KV
    /// lived on the failed core.
    pub evicted_sequences: usize,
    /// Token slots of KV lost on the failed core.
    pub evicted_tokens: u64,
    /// Whether the wafer can still serve traffic afterwards.
    pub serviceable: bool,
}

/// A request completion event: `(record index, completion time)`.
pub type Completion = (usize, f64);

/// How a request enters the engine — the parameter of the single admission
/// path ([`Engine::submit_with`]) every submission flavour goes through.
/// Consolidating the three former entry points behind one enum keeps their
/// bookkeeping (wire-token dedup, readiness gating, queue-demand tracking)
/// from drifting apart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Full local service: prefill then decode on this wafer.
    Local,
    /// Prefill-only service (the prefill wafer of a disaggregated
    /// deployment): the sequence completes — and its KV is exported for
    /// migration — as soon as prefill finishes, emitting no decode tokens
    /// here.
    PrefillOnly,
    /// The prompt KV was prefilled on another wafer and arrives over the
    /// inter-wafer link at `ready_s`: admission *imports* the KV
    /// (allocating capacity without recompute) and the sequence goes
    /// straight to decode.
    Imported {
        /// Instant the migrated KV lands and the request becomes
        /// admissible.
        ready_s: f64,
    },
}

/// One wafer's online serving engine.
///
/// Fields are crate-visible: the stage units in [`crate::stage`] operate
/// directly on the engine's queues, and [`crate::snapshot`] serializes
/// them. Together with the KV manager they are the engine's *complete*
/// mutable state — the checkpoint/resume identity test holds the proof.
#[derive(Debug, Clone)]
pub struct Engine {
    pub(crate) times: HwStageTimes,
    pub(crate) manager: KvManager,
    pub(crate) config: EngineConfig,
    pub(crate) records: Vec<RequestRecord>,
    /// The waiting queue: a dense arena indexed by rank/readiness heaps
    /// ([`crate::arena::IndexQueue`]), so admission and the idle
    /// fast-forward query are O(log n) instead of linear scans.
    pub(crate) pending: IndexQueue<PendingReq>,
    pub(crate) active: Vec<ActiveSeq>,
    pub(crate) admission_suspended: bool,
    pub(crate) clock_s: f64,
    pub(crate) busy_s: f64,
    /// Token-demand of the pending queue (prompt + decoded per request),
    /// maintained incrementally for the `LeastKvLoad` router.
    pub(crate) pending_tokens: usize,
    /// Wire-token demand of queued imported-KV entries, maintained
    /// incrementally for [`Engine::pending_imported_tokens`].
    pub(crate) pending_wire_tokens: usize,
    pub(crate) stats: EngineStats,
    pub(crate) order_counter: u64,
    /// Lifecycle event emission, disabled (and costless) by default.
    /// Strictly observational: nothing the tracer does feeds back into
    /// admission, timing or eviction decisions.
    pub(crate) tracer: Tracer,
}

impl Engine {
    /// Builds an engine over a fresh KV manager.
    ///
    /// # Errors
    ///
    /// Propagates [`KvError::NoKvCores`] from the manager.
    pub fn new(times: HwStageTimes, kv: KvManagerConfig, config: EngineConfig) -> Result<Engine, KvError> {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.prefill_chunk > 0, "prefill_chunk must be positive");
        Ok(Engine {
            times,
            manager: KvManager::new(kv)?,
            config,
            records: Vec::new(),
            pending: IndexQueue::new(),
            active: Vec::new(),
            admission_suspended: false,
            clock_s: 0.0,
            busy_s: 0.0,
            pending_tokens: 0,
            pending_wire_tokens: 0,
            stats: EngineStats::default(),
            order_counter: 0,
            tracer: Tracer::off(),
        })
    }

    /// Wires a tracer into the engine (replacing the default disabled
    /// one). Events emitted from here on land in the tracer's sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The engine's tracer (disabled unless [`Engine::set_tracer`] armed
    /// it).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable tracer access, for collaborators that emit wafer-level
    /// events on this engine's stream (the fault injector's remap events).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The engine's simulated clock.
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Seconds spent with at least one token in flight.
    pub fn busy_s(&self) -> f64 {
        self.busy_s
    }

    /// Whether the engine has queued or resident work.
    pub fn has_work(&self) -> bool {
        !self.pending.is_empty() || !self.active.is_empty()
    }

    /// Requests waiting for admission.
    pub fn queue_len(&self) -> usize {
        self.pending.len()
    }

    /// Sequences resident in the KV cache.
    pub fn resident(&self) -> usize {
        self.active.len()
    }

    /// KV pressure for routing: resident plus queued token demand relative to
    /// cache capacity (may exceed 1 under overload).
    pub fn kv_load(&self) -> f64 {
        let demand = self.manager.used_tokens() + self.pending_tokens;
        demand as f64 / self.manager.capacity_tokens().max(1) as f64
    }

    /// Earliest instant at which any queued request becomes admissible
    /// (`None` with an empty queue).
    pub fn next_ready_s(&self) -> Option<f64> {
        let next = self.pending.next_ready_s();
        #[cfg(debug_assertions)]
        {
            // Differential check against the old linear min-scan.
            let naive = self.pending.ordered().iter().map(|&(ready, _)| ready).min_by(f64::total_cmp);
            debug_assert_eq!(next, naive, "arena next_ready_s diverged from the naive scan");
        }
        next
    }

    /// The engine's next event time: its clock while sequences are
    /// resident, otherwise the earliest instant queued work becomes
    /// admissible (stepping an idle engine fast-forwards the clock there).
    /// Schedulers arbitrating between engines must order by this rather
    /// than the raw clock, or an idle engine gets stepped — and commits its
    /// clock — to a late-landing migration before another engine at an
    /// earlier simulated time announces one that lands sooner.
    pub fn next_event_s(&self) -> f64 {
        if self.active.is_empty() {
            match self.next_ready_s() {
                Some(ready) => self.clock_s.max(ready),
                None => self.clock_s,
            }
        } else {
            self.clock_s
        }
    }

    /// Free KV tokens net of the queued demand (0 when oversubscribed), the
    /// signal behind the most-free-blocks decode placement policy.
    pub fn kv_free_tokens(&self) -> usize {
        self.manager
            .capacity_tokens()
            .saturating_sub(self.manager.used_tokens())
            .saturating_sub(self.pending_tokens)
    }

    /// Wire-token demand of queued imported-KV requests that have not been
    /// admitted yet (migrations announced but not landed in the cache);
    /// used by conservation checks of the disaggregated cluster. Counts the
    /// tokens actually travelling — prefix-deduplicated tokens never enter
    /// the wire accounting.
    pub fn pending_imported_tokens(&self) -> usize {
        #[cfg(debug_assertions)]
        {
            let naive: usize =
                self.pending.ordered().iter().filter(|(_, p)| p.imported).map(|(_, p)| p.wire_tokens).sum();
            debug_assert_eq!(
                self.pending_wire_tokens, naive,
                "incremental wire-token counter diverged from the queue scan"
            );
        }
        self.pending_wire_tokens
    }

    /// Tokens of `request`'s shared prefix already resident in this wafer's
    /// prefix cache (0 with prefix caching disabled or no tag). The signal
    /// behind prefix-affinity routing and migration byte dedup.
    pub fn prefix_cached_tokens(&self, request: &Request) -> usize {
        if !self.config.prefix_caching {
            return 0;
        }
        match request.shared_prefix {
            Some(p) => self.manager.prefix_lookup(p.group, p.tokens.min(request.prompt_len)),
            None => 0,
        }
    }

    /// Instantaneous telemetry gauges of this wafer: batch occupancy,
    /// queue depth and KV-cache occupancy. The link-bytes gauge is left
    /// zero — only the scenario driver knows the migration byte rate.
    pub fn kv_gauges(&self) -> ouro_trace::WaferGauges {
        let (used, capacity, audit) = self.manager.occupancy_snapshot();
        ouro_trace::WaferGauges {
            batch_occupancy: self.active.len(),
            queue_depth: self.pending.len(),
            kv_used_tokens: used,
            kv_capacity_tokens: capacity,
            kv_blocks_live: audit.live,
            kv_blocks_shared: audit.shared_live,
            link_bytes_in_flight: 0,
        }
    }

    /// KV exported to / imported from other wafers by this engine's manager.
    pub fn kv_transfers(&self) -> &KvTransferStats {
        self.manager.transfer_stats()
    }

    /// The manager's lifetime block audit (`allocated − freed == live`),
    /// exposed so fault-injection tests can assert conservation after every
    /// remap without reaching into the manager.
    pub fn kv_audit(&self) -> ouro_kvcache::BlockAudit {
        self.manager.block_audit()
    }

    /// Whether the wafer can still hold sequences (both attention roles
    /// have a healthy KV core left). Routers skip unserviceable wafers.
    pub fn is_serviceable(&self) -> bool {
        self.manager.is_serviceable()
    }

    /// Fraction of this wafer's KV cores still healthy, in `[0, 1]`.
    pub fn healthy_kv_fraction(&self) -> f64 {
        self.manager.healthy_kv_fraction()
    }

    /// Applies a runtime core fault to this wafer at `at_s` (§4.3.3): the
    /// replacement chain absorbs one KV core (the one nearest `preferred_kv_core`
    /// in the manager's flat index space), every sequence whose KV lived on
    /// it is evicted and re-enqueued for recompute at real prefill cost, a
    /// remap stall of `stall_s` is charged to every in-flight request (the
    /// wafer pauses while weights shift along the chain), and the pipeline's
    /// mean hop distance grows by `mean_hops_penalty` — the displaced tiles
    /// sit one hop further from their neighbours, which permanently slows
    /// every stage via [`HwStageTimes`].
    ///
    /// Returns `None` — and changes nothing — when every KV core has
    /// already failed (the wafer is dead; the router must steer around it).
    pub fn apply_fault(
        &mut self,
        at_s: f64,
        stall_s: f64,
        preferred_kv_core: usize,
        mean_hops_penalty: f64,
    ) -> Option<EngineFaultImpact> {
        assert!(stall_s >= 0.0 && mean_hops_penalty >= 0.0, "fault charges cannot be negative");
        let failure = self.manager.fail_kv_core(preferred_kv_core)?;
        // The fault strikes at `at_s` but the engine only observes it at a
        // step boundary; the stall extends whichever is later.
        self.clock_s = self.clock_s.max(at_s) + stall_s;
        self.times.mean_hops += mean_hops_penalty;
        self.stats.faults += 1;
        self.stats.stall_s += stall_s;
        self.stats.fault_evicted_seqs += failure.evicted_sequences.len() as u64;
        self.stats.fault_evicted_tokens += failure.evicted_tokens as u64;
        let evicted = failure.evicted_sequences.len();
        Stage::Fault.emit(
            &mut self.tracer,
            self.clock_s,
            None,
            EventKind::Fault { kv_core: failure.index, evicted_seqs: evicted },
        );
        for seq in failure.evicted_sequences {
            let Some(pos) = self.active.iter().position(|a| a.rec as u64 == seq) else {
                // The manager can only name resident sequences, and every
                // resident sequence is active.
                unreachable!("sequence {seq} is resident but not active");
            };
            let victim = self.active.swap_remove(pos);
            stage::admission::requeue_evicted(self, victim, true);
        }
        // A fault that evicted sequences freed capacity, so a pre-fault
        // admission suspension no longer reflects reality. A fault that
        // evicted nothing only *shrank* the cache — lifting the suspension
        // then would make the retry protocol evict a healthy resident
        // sequence and misattribute the recompute to the fault.
        if evicted > 0 {
            self.admission_suspended = false;
        }
        Some(EngineFaultImpact {
            kv_core_index: failure.index,
            evicted_sequences: evicted,
            evicted_tokens: failure.evicted_tokens as u64,
            serviceable: self.manager.is_serviceable(),
        })
    }

    /// Takes the wafer out of service at `at_s` — the path for a fault the
    /// replacement chain cannot heal (no KV core left to absorb the
    /// weights). Every remaining healthy KV crossbar fails at once, the
    /// affected sequences are evicted for recompute, and the whole outage
    /// counts as a *single* fault in [`EngineStats`] (it is one fault
    /// event, however many crossbars it takes down). Returns how many
    /// sequences and token slots of KV the outage evicted.
    pub fn decommission(&mut self, at_s: f64) -> (usize, u64) {
        self.clock_s = self.clock_s.max(at_s);
        let mut evicted_seqs = 0usize;
        let mut evicted_tokens = 0u64;
        let mut first_core = None;
        while let Some(failure) = self.manager.fail_kv_core(0) {
            first_core.get_or_insert(failure.index);
            evicted_tokens += failure.evicted_tokens as u64;
            for seq in failure.evicted_sequences {
                let pos = self
                    .active
                    .iter()
                    .position(|a| a.rec as u64 == seq)
                    .expect("a resident sequence is always active");
                let victim = self.active.swap_remove(pos);
                stage::admission::requeue_evicted(self, victim, true);
                evicted_seqs += 1;
            }
        }
        Stage::Fault.emit(
            &mut self.tracer,
            self.clock_s,
            None,
            EventKind::Fault { kv_core: first_core.unwrap_or(0), evicted_seqs },
        );
        self.stats.faults += 1;
        self.stats.fault_evicted_seqs += evicted_seqs as u64;
        self.stats.fault_evicted_tokens += evicted_tokens;
        if evicted_seqs > 0 {
            self.admission_suspended = false;
        }
        (evicted_seqs, evicted_tokens)
    }

    /// Raw counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Per-request lifecycle records (indexed by submission order).
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// The single admission path: submits a request arriving at
    /// `arrival_s` under the given [`Admission`] flavour, tagged with the
    /// global id and wafer index for reporting. `arrival_s` is always the
    /// request's original arrival (kept for TTFT/E2E accounting);
    /// [`Admission::Imported`] gates admissibility on its own `ready_s`.
    /// Returns the engine-local record index.
    pub fn submit_with(
        &mut self,
        request: Request,
        arrival_s: f64,
        admission: Admission,
        id: usize,
        wafer: usize,
    ) -> usize {
        let (ready_s, imported, prefill_only) = match admission {
            Admission::Local => (arrival_s, false, false),
            Admission::PrefillOnly => (arrival_s, false, true),
            Admission::Imported { ready_s } => (ready_s, true, false),
        };
        // No clock fast-forward here: an idle engine advances to the
        // earliest admissible instant at the top of `step`, where the
        // *minimum* ready time over the whole queue is known. Jumping to
        // this request's `ready_s` now would strand a later submission that
        // becomes ready sooner (migrations land out of submission order).
        let rec = self.records.len();
        // Imported KV is deduplicated against this wafer's prefix cache at
        // announce time: only the uncached portion travels the link.
        let wire_tokens = if imported {
            request.prompt_len - self.prefix_cached_tokens(&request).min(request.prompt_len)
        } else {
            0
        };
        self.records.push(RequestRecord {
            id,
            wafer,
            prompt_len: request.prompt_len,
            decode_len: request.decode_len,
            arrival_s,
            admitted_s: f64::NAN,
            queue_wait_s: 0.0,
            first_token_s: f64::NAN,
            completed_s: f64::NAN,
            evictions: 0,
            cached_prefix_tokens: 0,
            shared_prefix: request.shared_prefix,
        });
        self.pending.push_back(
            ready_s,
            PendingReq { rec, decoded: 0, ready_s, imported, wire_tokens, evicted: false, prefill_only },
        );
        self.pending_tokens += request.prompt_len;
        self.pending_wire_tokens += wire_tokens;
        rec
    }

    /// Runs one continuous-batching iteration through the stage pipeline:
    /// Admission admits FCFS, Prefill and Decode advance every resident
    /// sequence by one unit of work in a single interleaved pass, the
    /// clock advances by the step duration, and Complete retires finished
    /// sequences (a completion lifts the admission suspension).
    ///
    /// Returns the completions that occurred, stamped with their times.
    pub fn step(&mut self) -> Vec<Completion> {
        // An empty batch with only future-ready queued work means the engine
        // is idle: fast-forward to the earliest admissible instant (not the
        // head's — migrations make readiness non-monotone with queue order).
        if self.active.is_empty() {
            if let Some(min_ready) = self.next_ready_s() {
                if min_ready > self.clock_s {
                    self.clock_s = min_ready;
                }
            }
        }
        stage::admission::admit_waiting(self);
        if self.active.is_empty() {
            return Vec::new();
        }

        self.stats.steps += 1;
        self.stats.peak_resident = self.stats.peak_resident.max(self.active.len());

        let (step_tokens, step_s) = stage::decode::plan_step(self);
        let end_s = self.clock_s + step_s;
        self.busy_s += step_s;
        stage::decode::emit_step(self, end_s, step_tokens);

        // Advance every resident sequence by its unit of work — ONE
        // interleaved prefill/decode pass in active-set order (two separate
        // passes would reorder `prefill_end` relative to `first_token`).
        let mut evicted_now: Vec<usize> = Vec::new();
        for i in 0..self.active.len() {
            if stage::prefill::advance_one(self, i, end_s) {
                continue;
            }
            stage::decode::advance_one(self, i, end_s, &mut evicted_now);
        }
        // Decode-growth failures evict (highest index first so swap_remove
        // keeps earlier indices valid).
        evicted_now.sort_unstable_by(|a, b| b.cmp(a));
        for i in evicted_now {
            let victim = self.active.swap_remove(i);
            stage::admission::requeue_evicted(self, victim, false);
        }

        self.clock_s = end_s;
        let completions = stage::complete::retire(self, end_s);
        if !completions.is_empty() {
            self.admission_suspended = false;
        }
        completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_hw::{CimCore, CoreId};
    use ouro_model::zoo;
    use ouro_noc::CommCost;

    fn times() -> HwStageTimes {
        HwStageTimes {
            model: zoo::llama_13b(),
            core: CimCore::paper(),
            cores_per_stage: [20, 0, 0, 7, 27, 27],
            comm: CommCost::paper(),
            mean_hops: 3.0,
            inter_wafer_crossings_per_token: 0.0,
        }
    }

    fn kv(cores: usize) -> KvManagerConfig {
        KvManagerConfig::new((0..cores).map(CoreId).collect(), 1, 128)
    }

    fn engine(cores: usize) -> Engine {
        Engine::new(times(), kv(cores), EngineConfig::default()).unwrap()
    }

    #[test]
    fn single_request_runs_to_completion() {
        let mut e = engine(8);
        e.submit_with(Request::new(0, 64, 8), 0.5, Admission::Local, 0, 0);
        let mut completions = Vec::new();
        while e.has_work() {
            completions.extend(e.step());
        }
        assert_eq!(completions.len(), 1);
        let r = &e.records()[0];
        assert!(r.admitted_s >= 0.5);
        assert!(r.first_token_s > r.admitted_s, "prefill must take time");
        assert!(r.completed_s > r.first_token_s);
        assert_eq!(e.stats().dropped, 0);
        assert_eq!(e.stats().evictions, 0);
        assert!(e.busy_s() > 0.0);
    }

    #[test]
    fn admission_flavours_shape_the_lifecycle_records() {
        // Formerly compared the deprecated `submit`/`submit_prefill_only`/
        // `submit_imported` wrappers against the enum path; the wrappers are
        // gone, so pin the behaviour of the three `Admission` flavours
        // directly: Local completes end-to-end, PrefillOnly exports KV and
        // never emits a first token (NaN sentinel), and Imported is gated on
        // its `ready_s`, not the nominal arrival.
        let mut e = engine(8);
        e.submit_with(Request::new(0, 64, 8), 0.0, Admission::Local, 0, 0);
        e.submit_with(Request::new(1, 64, 8), 0.0, Admission::PrefillOnly, 1, 0);
        e.submit_with(Request::new(2, 64, 8), 0.0, Admission::Imported { ready_s: 0.001 }, 2, 0);
        while e.has_work() {
            e.step();
        }
        let [local, prefill_only, imported] = e.records() else { panic!("three records") };
        assert!(local.completed_s > local.first_token_s && local.first_token_s > 0.0);
        assert!(prefill_only.first_token_s.is_nan(), "prefill-only never decodes a first token");
        assert!(prefill_only.completed_s > 0.0, "prefill-only completes at KV export");
        assert!(imported.admitted_s >= 0.001, "imported admission waits for the KV to land");
        assert!(imported.completed_s > imported.first_token_s);
    }

    #[test]
    fn idle_engine_fast_forwards_to_arrivals() {
        let mut e = engine(8);
        e.submit_with(Request::new(0, 32, 4), 10.0, Admission::Local, 0, 0);
        e.step();
        assert!(e.clock_s() >= 10.0, "the first step jumps an idle engine to the arrival");
        while e.has_work() {
            e.step();
        }
        let r = &e.records()[0];
        assert!(r.completed_s > 10.0);
        // Utilization excludes the idle gap before the arrival.
        assert!(e.busy_s() < r.completed_s - 5.0);
    }

    #[test]
    fn later_arrival_waits_for_its_timestamp() {
        let mut e = engine(8);
        e.submit_with(Request::new(0, 32, 64), 0.0, Admission::Local, 0, 0);
        e.submit_with(Request::new(1, 32, 4), 1e9, Admission::Local, 1, 0);
        // The first request completes long before the second arrives.
        let mut steps = 0;
        while e.records()[0].completed_s.is_nan() && steps < 10_000 {
            e.step();
            steps += 1;
        }
        assert!(e.records()[0].completed_s < 1e9);
        assert!(e.records()[1].admitted_s.is_nan());
        while e.has_work() {
            e.step();
        }
        assert!(e.records()[1].admitted_s >= 1e9);
    }

    #[test]
    fn overload_evicts_but_conserves_requests() {
        // A 2-core cache holds ~32k tokens; 40 requests of 2k tokens each
        // demand ~80k, so decode growth must evict.
        let mut e = engine(2);
        for i in 0..40 {
            e.submit_with(Request::new(i, 1000, 1000), 0.0, Admission::Local, i, 0);
        }
        let mut completions = 0;
        let mut guard = 0;
        while e.has_work() && guard < 2_000_000 {
            completions += e.step().len();
            guard += 1;
        }
        assert!(guard < 2_000_000, "engine must make progress under overload");
        let done = e.records().iter().filter(|r| r.completed()).count();
        assert_eq!(done, completions);
        assert_eq!(done + e.stats().dropped as usize, 40, "every request completes or is dropped");
        assert!(e.stats().evictions > 0, "a tiny cache must evict under this load");
        assert!(e.stats().recomputed_tokens > 0);
    }

    #[test]
    fn eviction_preserves_decode_progress() {
        let mut e = engine(2);
        for i in 0..40 {
            e.submit_with(Request::new(i, 800, 800), 0.0, Admission::Local, i, 0);
        }
        while e.has_work() {
            e.step();
        }
        let evicted: Vec<&RequestRecord> =
            e.records().iter().filter(|r| r.evictions > 0 && r.completed()).collect();
        assert!(!evicted.is_empty(), "this workload must evict at least one request");
        for r in evicted {
            // First token precedes completion even across evictions, and is
            // never re-emitted (monotone record).
            assert!(r.first_token_s <= r.completed_s);
        }
    }

    #[test]
    fn oversized_request_is_dropped_not_spun_on() {
        let mut e = engine(2);
        let cap = 100_000; // far beyond two cores of KV
        e.submit_with(Request::new(0, cap, 4), 0.0, Admission::Local, 0, 0);
        e.submit_with(Request::new(1, 64, 4), 0.0, Admission::Local, 1, 0);
        while e.has_work() {
            e.step();
        }
        assert_eq!(e.stats().dropped, 1);
        assert!(e.records()[1].completed());
    }

    #[test]
    fn zero_decode_requests_complete_after_prefill() {
        let mut e = engine(8);
        e.submit_with(Request::new(0, 128, 0), 0.0, Admission::Local, 0, 0);
        while e.has_work() {
            e.step();
        }
        let r = &e.records()[0];
        assert!(r.completed());
        assert!(r.first_token_s.is_nan(), "no decode token is ever emitted");
        assert!(r.completed_s > 0.0);
    }

    #[test]
    fn bigger_batches_run_more_tokens_per_step() {
        // With 8 identical requests resident, steady-state decode steps move
        // 8 tokens and so take at least as long as single-request steps, but
        // less than 8x (pipeline overlap).
        let run = |n: usize| -> f64 {
            let mut e = engine(16);
            for i in 0..n {
                e.submit_with(Request::new(i, 32, 64), 0.0, Admission::Local, i, 0);
            }
            while e.has_work() {
                e.step();
            }
            e.records().iter().map(|r| r.completed_s).fold(0.0, f64::max)
        };
        let t1 = run(1);
        let t8 = run(8);
        assert!(t8 >= t1, "more work cannot finish earlier");
        assert!(t8 < 8.0 * t1, "continuous batching must overlap sequences, {t8} vs {t1}");
    }

    #[test]
    fn prefill_only_completes_at_prefill_end_and_exports_kv() {
        let mut e = engine(8);
        e.submit_with(Request::new(0, 256, 64), 0.0, Admission::PrefillOnly, 0, 0);
        let mut completions = Vec::new();
        while e.has_work() {
            completions.extend(e.step());
        }
        assert_eq!(completions.len(), 1);
        let r = &e.records()[0];
        assert!(r.completed(), "prefill-only service completes when prefill ends");
        assert!(r.first_token_s.is_nan(), "no decode token is emitted on the prefill wafer");
        let t = e.kv_transfers();
        assert_eq!(t.exported_sequences, 1);
        assert_eq!(t.exported_tokens, 256, "the whole prompt KV is exported");
        assert_eq!(t.imported_tokens, 0);
    }

    #[test]
    fn prefill_only_is_faster_than_full_service() {
        let run = |prefill_only: bool| -> f64 {
            let mut e = engine(8);
            let admission = if prefill_only { Admission::PrefillOnly } else { Admission::Local };
            e.submit_with(Request::new(0, 256, 64), 0.0, admission, 0, 0);
            while e.has_work() {
                e.step();
            }
            e.records()[0].completed_s
        };
        assert!(run(true) < run(false), "skipping 64 decode steps must save time");
    }

    #[test]
    fn imported_sequence_decodes_without_recompute() {
        let mut e = engine(8);
        // KV for the 256-token prompt was prefilled elsewhere; migration
        // lands at t = 5.0 although the request arrived at t = 1.0.
        e.submit_with(Request::new(0, 256, 16), 1.0, Admission::Imported { ready_s: 5.0 }, 0, 0);
        let mut completions = Vec::new();
        while e.has_work() {
            completions.extend(e.step());
        }
        assert_eq!(completions.len(), 1);
        let r = &e.records()[0];
        assert_eq!(r.arrival_s, 1.0, "the record keeps the original arrival for TTFT");
        assert!(r.admitted_s >= 5.0, "admission waits for the migration");
        assert!(r.first_token_s > r.admitted_s);
        assert!(r.completed());
        let t = e.kv_transfers();
        assert_eq!(t.imported_sequences, 1);
        assert_eq!(t.imported_tokens, 256);
        assert_eq!(e.stats().recomputed_tokens, 0, "imported KV is not recomputed");
    }

    #[test]
    fn imported_sequence_starts_decoding_faster_than_full_service() {
        let run = |imported: bool| -> f64 {
            let mut e = engine(8);
            let admission = if imported { Admission::Imported { ready_s: 0.0 } } else { Admission::Local };
            e.submit_with(Request::new(0, 512, 8), 0.0, admission, 0, 0);
            while e.has_work() {
                e.step();
            }
            e.records()[0].first_token_s
        };
        assert!(run(true) < run(false), "imported KV must skip the prefill pass");
    }

    #[test]
    fn landed_migration_is_not_blocked_by_a_slower_one_ahead() {
        // Submitted first but lands late vs. submitted second and lands
        // almost immediately: admission order must follow readiness, not
        // submission order, or the early migration idles for ~1 s.
        let mut e = engine(8);
        e.submit_with(Request::new(0, 256, 4), 0.0, Admission::Imported { ready_s: 1.0 }, 0, 0);
        e.submit_with(Request::new(1, 64, 4), 0.0, Admission::Imported { ready_s: 0.001 }, 1, 0);
        let mut guard = 0;
        while e.records()[1].admitted_s.is_nan() && guard < 10_000 {
            e.step();
            guard += 1;
        }
        let early = &e.records()[1];
        assert!(
            early.admitted_s < 1.0,
            "the landed migration must not wait behind the unready head: admitted at {}",
            early.admitted_s
        );
        while e.has_work() {
            e.step();
        }
        assert!(e.records()[0].completed() && e.records()[1].completed());
        assert!(e.records()[0].admitted_s >= 1.0, "the slow migration still waits for its landing");
    }

    #[test]
    fn export_then_import_conserves_tokens_across_engines() {
        let mut prefill = engine(8);
        let mut decode = engine(8);
        prefill.submit_with(Request::new(0, 300, 20), 0.0, Admission::PrefillOnly, 0, 0);
        let mut done = Vec::new();
        while prefill.has_work() {
            done.extend(prefill.step());
        }
        let (rec, t_done) = done[0];
        let tokens = prefill.kv_transfers().exported_tokens;
        assert_eq!(tokens, 300);
        decode.submit_with(
            Request::new(0, prefill.records()[rec].prompt_len, 20),
            0.0,
            Admission::Imported { ready_s: t_done + 0.001 },
            0,
            1,
        );
        while decode.has_work() {
            decode.step();
        }
        assert_eq!(decode.kv_transfers().imported_tokens, tokens, "exported == imported");
        assert!(decode.records()[0].completed());
    }

    #[test]
    fn a_fault_evicts_resident_kv_and_recomputes_it() {
        let mut e = engine(8);
        e.submit_with(Request::new(0, 256, 512), 0.0, Admission::Local, 0, 0);
        // Run until decode is underway, then fail the core holding the KV.
        while e.records()[0].first_token_s.is_nan() {
            e.step();
        }
        let clock_before = e.clock_s();
        let audit_before = e.kv_audit();
        assert!(audit_before.live > 0);
        let impact = e.apply_fault(clock_before, 0.5e-3, 0, 0.5).expect("healthy cores remain");
        assert_eq!(impact.evicted_sequences, 1, "the lone resident sequence loses its KV");
        assert!(impact.evicted_tokens > 0);
        assert!(impact.serviceable);
        assert!(e.kv_audit().is_conserved(), "fault eviction must not double-free blocks");
        assert!(e.clock_s() >= clock_before + 0.5e-3, "the remap stall pauses the wafer");
        assert_eq!(e.stats().faults, 1);
        assert_eq!(e.stats().fault_evicted_seqs, 1);
        assert_eq!(
            e.stats().recomputed_tokens,
            0,
            "the recompute charge lands at re-admission, not at eviction"
        );
        // The request still completes after recompute.
        while e.has_work() {
            e.step();
        }
        assert!(e.stats().recomputed_tokens > 0, "lost KV is recomputed on re-admission");
        assert!(e.records()[0].completed());
        assert_eq!(e.records()[0].evictions, 1);
    }

    #[test]
    fn faults_degrade_the_pipeline_permanently() {
        // Two identical engines, one fault apart: the faulted one finishes
        // the same work strictly later (stall + mean-hops penalty).
        let run = |fault: bool| -> f64 {
            let mut e = engine(8);
            e.submit_with(Request::new(0, 128, 256), 0.0, Admission::Local, 0, 0);
            e.step();
            if fault {
                let t = e.clock_s();
                e.apply_fault(t, 1e-3, 0, 1.0).unwrap();
            }
            while e.has_work() {
                e.step();
            }
            e.records()[0].completed_s
        };
        assert!(run(true) > run(false));
    }

    #[test]
    fn a_wafer_with_every_kv_unit_failed_is_dead_but_conserves_requests() {
        let mut e = engine(2); // 1 key + 1 value core, 32 crossbars each
        let mut faults = 0;
        while e.apply_fault(0.0, 0.0, faults, 0.0).is_some() {
            faults += 1;
        }
        assert_eq!(faults, 64, "one fault per crossbar kills the wafer");
        assert!(!e.is_serviceable());
        assert_eq!(e.healthy_kv_fraction(), 0.0);
        assert!(e.apply_fault(0.0, 0.0, 0, 0.0).is_none(), "a dead wafer absorbs no more faults");
        // Requests routed here anyway are dropped, not spun on.
        e.submit_with(Request::new(0, 64, 8), 0.0, Admission::Local, 0, 0);
        while e.has_work() {
            e.step();
        }
        assert_eq!(e.stats().dropped, 1);
    }

    #[test]
    fn kv_load_tracks_queue_and_residency() {
        let mut e = engine(4);
        assert_eq!(e.kv_load(), 0.0);
        e.submit_with(Request::new(0, 512, 64), 0.0, Admission::Local, 0, 0);
        let queued = e.kv_load();
        assert!(queued > 0.0, "queued demand counts toward load");
        e.step();
        assert!(e.resident() == 1);
        assert!(e.kv_load() > 0.0);
    }

    #[test]
    fn shared_prefix_requests_skip_cached_prefill() {
        let mut e = engine(8);
        // Two concurrent requests sharing a 256-token system prompt with
        // 64-token unique tails.
        e.submit_with(Request::new(0, 320, 8).with_shared_prefix(1, 256), 0.0, Admission::Local, 0, 0);
        e.submit_with(Request::new(1, 320, 8).with_shared_prefix(1, 256), 0.0, Admission::Local, 1, 0);
        while e.has_work() {
            e.step();
        }
        // The first admission populates the chain (cold), the second hits.
        assert_eq!(e.stats().prefix_hits, 1);
        assert_eq!(e.stats().cached_prefix_tokens, 256);
        assert_eq!(e.records()[1].cached_prefix_tokens, 256);
        assert_eq!(e.records()[0].cached_prefix_tokens, 0);
        // Prefill was charged for 320 (cold) + 64 (hit suffix) tokens.
        assert_eq!(e.stats().prefilled_tokens, 320 + 64);
        assert!(e.kv_audit().is_conserved());
        assert_eq!(e.kv_audit().live, 0, "a drained engine frees its chains too");
    }

    #[test]
    fn prefix_hits_cut_ttft_against_the_cold_run() {
        let run = |caching: bool| -> (f64, u64) {
            let mut e = Engine::new(
                times(),
                kv(8),
                EngineConfig { prefix_caching: caching, ..EngineConfig::default() },
            )
            .unwrap();
            for i in 0..6 {
                e.submit_with(
                    Request::new(i, 520, 8).with_shared_prefix(9, 512),
                    0.0,
                    Admission::Local,
                    i,
                    0,
                );
            }
            while e.has_work() {
                e.step();
            }
            let mean_ttft =
                e.records().iter().filter_map(|r| r.ttft_s()).sum::<f64>() / e.records().len() as f64;
            (mean_ttft, e.stats().prefilled_tokens)
        };
        let (ttft_on, prefilled_on) = run(true);
        let (ttft_off, prefilled_off) = run(false);
        assert!(ttft_on < ttft_off, "prefix caching must cut mean TTFT: {ttft_on} vs {ttft_off}");
        assert!(
            prefilled_on < prefilled_off,
            "prefix caching must prefill fewer tokens: {prefilled_on} vs {prefilled_off}"
        );
    }

    /// Satellite regression (queueing-delay accounting): `admitted_s` keeps
    /// the *first* admission, while waiting time after an eviction
    /// accumulates in `queue_wait_s` instead of silently inflating apparent
    /// service time.
    #[test]
    fn post_eviction_queueing_is_accounted_as_queue_wait() {
        let mut e = engine(2);
        for i in 0..40 {
            e.submit_with(Request::new(i, 800, 800), 0.0, Admission::Local, i, 0);
        }
        while e.has_work() {
            e.step();
        }
        let evicted: Vec<&RequestRecord> =
            e.records().iter().filter(|r| r.evictions > 0 && r.completed()).collect();
        assert!(!evicted.is_empty(), "this workload must evict at least one request");
        for r in evicted {
            assert!(
                r.queue_wait_s > r.admitted_s - r.arrival_s + 1e-12,
                "an evicted request's total queue wait ({}) must exceed its first-admission \
                 wait ({})",
                r.queue_wait_s,
                r.admitted_s - r.arrival_s
            );
        }
        // Un-evicted requests: queue wait equals the first-admission wait.
        for r in e.records().iter().filter(|r| r.evictions == 0 && r.completed()) {
            assert!((r.queue_wait_s - (r.admitted_s - r.arrival_s)).abs() < 1e-12);
        }
    }

    /// Satellite regression (recompute double-count): a step boundary where
    /// a fault evicts the victim *and* admission pressure evicts again must
    /// charge `recomputed_tokens` exactly once per actual replay. Seeds and
    /// sizes are pinned; the expected counter is derived independently from
    /// the per-request eviction counts.
    #[test]
    fn fault_plus_capacity_eviction_charges_recompute_once() {
        let mut e = engine(8);
        e.submit_with(Request::new(0, 256, 512), 0.0, Admission::Local, 0, 0);
        while e.records()[0].first_token_s.is_nan() {
            e.step();
        }
        // The fault evicts the lone resident sequence (no charge yet)...
        let impact = e.apply_fault(e.clock_s(), 0.5e-3, 0, 0.0).expect("healthy cores remain");
        assert_eq!(impact.evicted_sequences, 1);
        assert_eq!(e.stats().recomputed_tokens, 0);
        // ...and the following steps re-admit it: one charge, equal to the
        // resident KV at eviction (prompt + decode progress so far).
        while e.has_work() {
            e.step();
        }
        assert!(e.records()[0].completed());
        assert_eq!(e.records()[0].evictions, 1, "exactly one eviction in this scenario");
        let r = &e.records()[0];
        // One replay of (prompt + decoded-at-eviction) tokens; decoded at
        // eviction is bounded by the final decode length.
        assert!(e.stats().recomputed_tokens >= r.prompt_len as u64);
        assert!(
            e.stats().recomputed_tokens <= (r.prompt_len + r.decode_len) as u64,
            "a single replay can never exceed one full residency: {} tokens",
            e.stats().recomputed_tokens
        );
        assert!(e.kv_audit().is_conserved());
    }
}
