//! Routing and placement policies behind object-safe traits.
//!
//! The serving stack makes two kinds of pool-selection decisions: a
//! [`Router`] assigns each arriving request to a wafer of the entry pool
//! (every wafer of a colocated deployment, the prefill pool of a
//! disaggregated one), and a [`Placement`] picks the decode wafer a
//! finished prefill's KV migrates to. Both are open traits — a new policy
//! is one `impl`, not a new match arm in two crates — with the classic
//! built-ins available as constructors ([`routers`], [`placements`]).
//!
//! Every built-in resolves score ties through the shared
//! [`pick_min_index`] family, so equal scores always go to the lowest
//! wafer index and every run stays a pure function of its seeds. Custom
//! policies should do the same: route through these helpers instead of
//! `Iterator::min_by` (which returns the *last* minimum, making tie-breaks
//! depend on pool size).

use crate::engine::Engine;
use ouro_workload::Request;

/// Assigns each arriving request to a wafer of the entry pool.
///
/// `engines` is the entry pool in wafer-index order: all wafers of a
/// colocated deployment, the prefill pool of a disaggregated one. The
/// router sees live engine state at the arrival instant and must return an
/// index into `engines`. Implementations may keep state (`&mut self`), but
/// must stay deterministic — given the same call sequence they must make
/// the same decisions, or seeded runs stop being reproducible.
pub trait Router: std::fmt::Debug + Send + Sync {
    /// Stable policy name for reports and tables (e.g. `"least-kv-load"`).
    fn name(&self) -> String;

    /// Picks the wafer for `request`. Wafers that faults have rendered
    /// unserviceable should be skipped while any healthy one remains (the
    /// built-ins all do, via [`pick_serviceable_min_index`]).
    fn route(&mut self, engines: &[Engine], request: &Request) -> usize;

    /// Boxed clone, so scenarios holding a router stay cloneable.
    fn clone_box(&self) -> Box<dyn Router>;

    /// The policy's mutable state, flattened to one integer for run
    /// checkpoints. Stateless policies (every built-in except round-robin)
    /// keep the default `0`.
    fn checkpoint_state(&self) -> u64 {
        0
    }

    /// Reapplies a [`Router::checkpoint_state`] value on resume. A no-op
    /// for stateless policies.
    fn restore_state(&mut self, _state: u64) {}
}

impl Clone for Box<dyn Router> {
    fn clone(&self) -> Box<dyn Router> {
        self.clone_box()
    }
}

/// Picks the decode wafer a finished prefill's KV migrates to.
///
/// `decode` is the decode pool in wafer-index order. `from_wafer` is the
/// prefill wafer the KV was produced on and `prefill_wafers` the size of
/// the prefill pool, which together define optical distance on the wafer
/// line (`(prefill_wafers - from_wafer) + decode_index` boundary
/// crossings) for locality-aware policies.
pub trait Placement: std::fmt::Debug + Send + Sync {
    /// Stable policy name for reports and tables (e.g. `"locality-aware"`).
    fn name(&self) -> String;

    /// Picks the decode wafer (an index into `decode`) for `request`'s
    /// migrated KV.
    fn place(
        &mut self,
        decode: &[Engine],
        from_wafer: usize,
        prefill_wafers: usize,
        request: &Request,
    ) -> usize;

    /// Boxed clone, so scenarios holding a placement stay cloneable.
    fn clone_box(&self) -> Box<dyn Placement>;

    /// The policy's mutable state, flattened to one integer for run
    /// checkpoints. Every built-in placement is stateless and keeps the
    /// default `0`.
    fn checkpoint_state(&self) -> u64 {
        0
    }

    /// Reapplies a [`Placement::checkpoint_state`] value on resume. A
    /// no-op for stateless policies.
    fn restore_state(&mut self, _state: u64) {}
}

impl Clone for Box<dyn Placement> {
    fn clone(&self) -> Box<dyn Placement> {
        self.clone_box()
    }
}

/// Constructors for the built-in [`Router`] policies.
pub mod routers {
    use super::*;

    /// Cycle through wafers regardless of state (skipping wafers faults
    /// have killed while any healthy one remains).
    pub fn round_robin() -> Box<dyn Router> {
        Box::new(RoundRobin { next: 0 })
    }

    /// Send to the wafer whose KV cache (resident plus queued token
    /// demand) is least loaded.
    pub fn least_kv_load() -> Box<dyn Router> {
        Box::new(LeastKvLoad)
    }

    /// Send to the wafer with the fewest queued-plus-resident requests.
    pub fn join_shortest_queue() -> Box<dyn Router> {
        Box::new(JoinShortestQueue)
    }

    /// Send to the wafer already holding the longest cached run of the
    /// request's shared prefix (ties toward the least KV load, then the
    /// lowest index). Requests with no cached prefix anywhere — including
    /// all untagged requests — fall back to least-KV-load, so cold traffic
    /// still balances.
    pub fn prefix_affinity() -> Box<dyn Router> {
        Box::new(PrefixAffinityRouter)
    }

    #[derive(Debug, Clone)]
    struct RoundRobin {
        next: usize,
    }

    impl Router for RoundRobin {
        fn name(&self) -> String {
            "round-robin".to_string()
        }

        fn route(&mut self, engines: &[Engine], _request: &Request) -> usize {
            let n = engines.len();
            let any_alive = engines.iter().any(Engine::is_serviceable);
            for _ in 0..n {
                let w = self.next % n;
                self.next = (self.next + 1) % n;
                if !any_alive || engines[w].is_serviceable() {
                    return w;
                }
            }
            unreachable!("a serviceable wafer exists but the scan missed it");
        }

        fn clone_box(&self) -> Box<dyn Router> {
            Box::new(self.clone())
        }

        fn checkpoint_state(&self) -> u64 {
            self.next as u64
        }

        fn restore_state(&mut self, state: u64) {
            self.next = state as usize;
        }
    }

    #[derive(Debug, Clone)]
    struct LeastKvLoad;

    impl Router for LeastKvLoad {
        fn name(&self) -> String {
            "least-kv-load".to_string()
        }

        fn route(&mut self, engines: &[Engine], _request: &Request) -> usize {
            pick_serviceable_min_index(engines, Engine::kv_load)
        }

        fn clone_box(&self) -> Box<dyn Router> {
            Box::new(self.clone())
        }
    }

    #[derive(Debug, Clone)]
    struct JoinShortestQueue;

    impl Router for JoinShortestQueue {
        fn name(&self) -> String {
            "join-shortest-queue".to_string()
        }

        fn route(&mut self, engines: &[Engine], _request: &Request) -> usize {
            pick_serviceable_min_index(engines, |e| (e.queue_len() + e.resident()) as f64)
        }

        fn clone_box(&self) -> Box<dyn Router> {
            Box::new(self.clone())
        }
    }

    #[derive(Debug, Clone)]
    struct PrefixAffinityRouter;

    impl Router for PrefixAffinityRouter {
        fn name(&self) -> String {
            "prefix-affinity".to_string()
        }

        fn route(&mut self, engines: &[Engine], request: &Request) -> usize {
            pick_prefix_affine_index(engines, request)
        }

        fn clone_box(&self) -> Box<dyn Router> {
            Box::new(self.clone())
        }
    }
}

/// Constructors for the built-in [`Placement`] policies.
pub mod placements {
    use super::*;

    /// The decode wafer whose KV cache (resident plus queued demand,
    /// including announced migrations) is least loaded.
    pub fn least_kv_load() -> Box<dyn Placement> {
        Box::new(LeastKvLoad)
    }

    /// The decode wafer with the most free KV tokens net of queued demand
    /// (block-level headroom rather than relative load).
    pub fn most_free_blocks() -> Box<dyn Placement> {
        Box::new(MostFreeBlocks)
    }

    /// Prefers nearby decode wafers (fewer optical boundary crossings) but
    /// yields to load: the score is `kv_load + 0.1 · wafer_hops`, so a hop
    /// of distance is worth 10% of a cache of load.
    pub fn locality_aware() -> Box<dyn Placement> {
        Box::new(LocalityAware)
    }

    /// Prefers the decode wafer already holding the longest cached run of
    /// the sequence's shared prefix — the migration then ships only the
    /// uncached bytes. Ties (and untagged sequences) fall back to least KV
    /// load.
    pub fn prefix_affinity() -> Box<dyn Placement> {
        Box::new(PrefixAffinityPlacement)
    }

    #[derive(Debug, Clone)]
    struct LeastKvLoad;

    impl Placement for LeastKvLoad {
        fn name(&self) -> String {
            "least-kv-load".to_string()
        }

        fn place(&mut self, decode: &[Engine], _from: usize, _prefill: usize, _request: &Request) -> usize {
            pick_serviceable_min_index(decode, Engine::kv_load)
        }

        fn clone_box(&self) -> Box<dyn Placement> {
            Box::new(self.clone())
        }
    }

    #[derive(Debug, Clone)]
    struct MostFreeBlocks;

    impl Placement for MostFreeBlocks {
        fn name(&self) -> String {
            "most-free-blocks".to_string()
        }

        fn place(&mut self, decode: &[Engine], _from: usize, _prefill: usize, _request: &Request) -> usize {
            pick_serviceable_min_index(decode, |e| -(e.kv_free_tokens() as f64))
        }

        fn clone_box(&self) -> Box<dyn Placement> {
            Box::new(self.clone())
        }
    }

    #[derive(Debug, Clone)]
    struct LocalityAware;

    impl Placement for LocalityAware {
        fn name(&self) -> String {
            "locality-aware".to_string()
        }

        fn place(
            &mut self,
            decode: &[Engine],
            from: usize,
            prefill_wafers: usize,
            _request: &Request,
        ) -> usize {
            // A migration crosses one optical boundary per position it
            // travels on the wafer line (prefill wafers first, decode
            // wafers after them) — a locality term that needs the wafer
            // index, hence the index-scored selection variant.
            pick_serviceable_min_index_by(decode, |j, e| {
                e.kv_load() + 0.1 * ((prefill_wafers - from) + j) as f64
            })
        }

        fn clone_box(&self) -> Box<dyn Placement> {
            Box::new(self.clone())
        }
    }

    #[derive(Debug, Clone)]
    struct PrefixAffinityPlacement;

    impl Placement for PrefixAffinityPlacement {
        fn name(&self) -> String {
            "prefix-affinity".to_string()
        }

        fn place(&mut self, decode: &[Engine], _from: usize, _prefill: usize, request: &Request) -> usize {
            pick_prefix_affine_index(decode, request)
        }

        fn clone_box(&self) -> Box<dyn Placement> {
            Box::new(self.clone())
        }
    }
}

/// Index of the item with the lowest score, breaking ties toward the
/// lowest index (a strict `<` scan; `Iterator::min_by` would return the
/// *last* minimum, making tie-breaks depend on pool size). Every built-in
/// [`Router`] and [`Placement`] resolves its selection through this helper
/// (directly or via [`pick_serviceable_min_index`] /
/// [`pick_prefix_affine_index`]), so every pool-selection decision in the
/// workspace tie-breaks identically.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn pick_min_index<T>(items: &[T], score: impl Fn(&T) -> f64) -> usize {
    assert!(!items.is_empty(), "selection requires at least one candidate");
    let mut best = 0;
    let mut best_score = score(&items[0]);
    for (i, it) in items.iter().enumerate().skip(1) {
        let s = score(it);
        if s.total_cmp(&best_score).is_lt() {
            best = i;
            best_score = s;
        }
    }
    best
}

/// [`pick_min_index`] over the serviceable engines only (all engines when
/// the fleet is entirely dead), returning the winner's index in `engines`.
/// Shared by the built-in routing and placement policies so both route
/// around fault-degraded wafers identically.
pub fn pick_serviceable_min_index(engines: &[Engine], score: impl Fn(&Engine) -> f64) -> usize {
    pick_serviceable_min_index_by(engines, |_, e| score(e))
}

/// [`pick_serviceable_min_index`] with the wafer index passed to the score
/// alongside the engine, for policies whose score has a positional term
/// (e.g. locality: optical hops grow with the index on the wafer line).
pub fn pick_serviceable_min_index_by(engines: &[Engine], score: impl Fn(usize, &Engine) -> f64) -> usize {
    let any_alive = engines.iter().any(Engine::is_serviceable);
    pick_routable(engines, any_alive, score)
}

/// Index of the engine best placed to serve `request`'s shared prefix:
/// among the serviceable engines (all when the pool is entirely dead), the
/// one holding the longest cached run of the prefix — ties toward the
/// least KV load, then the lowest index — falling back to plain
/// least-KV-load when nothing is cached anywhere (including every untagged
/// request). Shared by the prefix-affinity router and the prefix-affine
/// decode placement so routing and placement steer identically.
pub fn pick_prefix_affine_index(engines: &[Engine], request: &Request) -> usize {
    let any_alive = engines.iter().any(Engine::is_serviceable);
    let best_cached = engines
        .iter()
        .filter(|e| !any_alive || e.is_serviceable())
        .map(|e| e.prefix_cached_tokens(request))
        .max()
        .unwrap_or(0);
    if best_cached == 0 {
        return pick_routable(engines, any_alive, |_, e| e.kv_load());
    }
    pick_routable(engines, any_alive, |_, e| {
        if e.prefix_cached_tokens(request) == best_cached {
            e.kv_load()
        } else {
            f64::INFINITY
        }
    })
}

/// Index of the lowest-scored engine among the serviceable ones (or all of
/// them when `any_alive` is false), ties toward the lowest index. The one
/// serviceability filter every selection helper funnels through.
fn pick_routable(engines: &[Engine], any_alive: bool, score: impl Fn(usize, &Engine) -> f64) -> usize {
    let candidates: Vec<usize> =
        (0..engines.len()).filter(|&i| !any_alive || engines[i].is_serviceable()).collect();
    candidates[pick_min_index(&candidates, |&i| score(i, &engines[i]))]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pick_min_index_prefers_the_first_minimum() {
        assert_eq!(pick_min_index(&[3.0, 1.0, 1.0, 2.0], |&x| x), 1);
        assert_eq!(pick_min_index(&[0.5], |&x| x), 0);
        assert_eq!(pick_min_index(&[2.0, 2.0, 2.0], |&x| x), 0);
    }

    proptest! {
        /// The tie-breaking contract of every built-in policy: whatever the
        /// score vector, the winner is the *first* index achieving the
        /// minimum. A coarse score domain forces frequent exact ties.
        #[test]
        fn equal_scores_always_resolve_to_the_lowest_index(
            scores in proptest::collection::vec(0u8..4, 1..40)
        ) {
            let picked = pick_min_index(&scores, |&s| s as f64);
            let min = *scores.iter().min().expect("non-empty");
            let first = scores.iter().position(|&s| s == min).expect("min exists");
            prop_assert_eq!(picked, first, "scores {:?}", scores);
        }

        /// Scaling every score by a positive constant never changes the
        /// winner — selection depends on order, not magnitude.
        #[test]
        fn selection_is_scale_invariant(
            scores in proptest::collection::vec(0u8..4, 1..40),
            scale in 1u32..1000
        ) {
            let a = pick_min_index(&scores, |&s| s as f64);
            let b = pick_min_index(&scores, |&s| s as f64 * scale as f64);
            prop_assert_eq!(a, b);
        }
    }
}
