//! Multi-wafer serving: one model replica per wafer, a front-end router, and
//! the global event loop that interleaves arrivals with engine iterations.
//!
//! Each wafer runs an independent [`Engine`] over its own KV cache (the
//! paper's multi-wafer study gangs wafers for *capacity*; here each wafer
//! holds a full replica and the cluster scales *throughput*, the standard
//! serving deployment). The router assigns every arrival to a wafer under a
//! pluggable [`RoutePolicy`], with routing decisions made against live engine
//! state at the arrival instant.

use crate::engine::{Engine, EngineConfig};
use crate::fault::{FaultInjector, FaultReport};
use crate::metrics::{RequestRecord, ServingReport, SloConfig};
use ouro_kvcache::KvError;
use ouro_sim::OuroborosSystem;
use ouro_workload::TimedTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// How the front-end router picks a wafer for an arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Cycle through wafers regardless of state.
    RoundRobin,
    /// Send to the wafer whose KV cache (resident plus queued token demand)
    /// is least loaded.
    LeastKvLoad,
    /// Send to the wafer with the fewest queued-plus-resident requests.
    JoinShortestQueue,
    /// Send to the wafer already holding the longest cached run of the
    /// request's shared prefix (ties toward the least KV load, then the
    /// lowest index). Requests with no cached prefix anywhere — including
    /// all untagged requests — fall back to least-KV-load, so cold traffic
    /// still balances.
    PrefixAffinity,
}

impl std::fmt::Display for RoutePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutePolicy::RoundRobin => write!(f, "round-robin"),
            RoutePolicy::LeastKvLoad => write!(f, "least-kv-load"),
            RoutePolicy::JoinShortestQueue => write!(f, "join-shortest-queue"),
            RoutePolicy::PrefixAffinity => write!(f, "prefix-affinity"),
        }
    }
}

/// A cluster of model replicas, one per wafer.
#[derive(Debug, Clone)]
pub struct Cluster {
    engines: Vec<Engine>,
    policy: RoutePolicy,
    rr_next: usize,
}

impl Cluster {
    /// Builds `wafers` identical replicas of `system`'s deployment: each
    /// wafer gets the system's stage-time model and a fresh KV manager from
    /// [`OuroborosSystem::serve_kv_config`].
    ///
    /// # Errors
    ///
    /// Propagates [`KvError::NoKvCores`] when the deployment leaves no KV
    /// cores.
    pub fn replicate(
        system: &OuroborosSystem,
        wafers: usize,
        policy: RoutePolicy,
        engine_cfg: EngineConfig,
    ) -> Result<Cluster, KvError> {
        assert!(wafers > 0, "a cluster needs at least one wafer");
        let engines = (0..wafers)
            .map(|_| Engine::new(system.stage_times().clone(), system.serve_kv_config(), engine_cfg))
            .collect::<Result<Vec<Engine>, KvError>>()?;
        Ok(Cluster { engines, policy, rr_next: 0 })
    }

    /// Number of wafers.
    pub fn wafers(&self) -> usize {
        self.engines.len()
    }

    /// Read access to the per-wafer engines.
    pub fn engines(&self) -> &[Engine] {
        &self.engines
    }

    /// Picks the wafer for `request` under the configured policy. Wafers
    /// that faults have rendered unserviceable are skipped so live traffic
    /// routes around the outage; when the whole fleet is dead, routing
    /// falls back to all wafers (the requests drop deterministically at
    /// admission).
    fn route(&mut self, request: &ouro_workload::Request) -> usize {
        let n = self.engines.len();
        let any_alive = self.engines.iter().any(Engine::is_serviceable);
        match self.policy {
            RoutePolicy::RoundRobin => {
                for _ in 0..n {
                    let w = self.rr_next % n;
                    self.rr_next = (self.rr_next + 1) % n;
                    if !any_alive || self.engines[w].is_serviceable() {
                        return w;
                    }
                }
                unreachable!("a serviceable wafer exists but the scan missed it");
            }
            RoutePolicy::LeastKvLoad => pick_routable(&self.engines, any_alive, Engine::kv_load),
            RoutePolicy::JoinShortestQueue => {
                pick_routable(&self.engines, any_alive, |e| (e.queue_len() + e.resident()) as f64)
            }
            RoutePolicy::PrefixAffinity => pick_prefix_affine_index(&self.engines, request),
        }
    }

    /// Serves a timed trace to completion (or to `horizon_s`) and reports SLO
    /// metrics. Closed-loop traces release one gated request per completion
    /// after an exponential think time.
    pub fn run(&mut self, timed: &TimedTrace, slo: &SloConfig, horizon_s: f64) -> ServingReport {
        self.run_inner(timed, slo, horizon_s, None)
    }

    /// Serves a timed trace with runtime faults from `injector` interleaved
    /// on the same simulated timeline: a pending fault fires once every busy
    /// engine has simulated past it and no earlier arrival is due, exactly
    /// like arrival routing — so the whole realisation stays a pure function
    /// of the seeds. Returns the serving report plus the fault accounting.
    pub fn run_with_faults(
        &mut self,
        timed: &TimedTrace,
        slo: &SloConfig,
        horizon_s: f64,
        injector: &mut FaultInjector,
    ) -> (ServingReport, FaultReport) {
        assert_eq!(
            injector.wafer_count(),
            self.engines.len(),
            "the fault injector must cover exactly this cluster's wafers"
        );
        let report = self.run_inner(timed, slo, horizon_s, Some(injector));
        let faults = injector.report(report.duration_s);
        (report, faults)
    }

    fn run_inner(
        &mut self,
        timed: &TimedTrace,
        slo: &SloConfig,
        horizon_s: f64,
        mut injector: Option<&mut FaultInjector>,
    ) -> ServingReport {
        // Open arrivals, sorted ascending; gated (closed-loop) requests wait
        // in submission order.
        let mut arrivals: VecDeque<(f64, usize)> = timed
            .arrivals
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_gated())
            .map(|(i, r)| (r.arrival_s, i))
            .collect();
        let mut gated: VecDeque<usize> =
            timed.arrivals.iter().enumerate().filter(|(_, r)| r.is_gated()).map(|(i, _)| i).collect();
        let think_time_s = match timed.config {
            ouro_workload::ArrivalConfig::ClosedLoop { think_time_s, .. } => think_time_s,
            _ => 0.0,
        };
        let mut think_rng = StdRng::seed_from_u64(timed.seed ^ 0x7417_1e5e_ed00_0002);

        loop {
            let next_arrival = arrivals.front().map(|&(t, _)| t);
            // Arbitration is by next *event* time, not raw clock: stepping
            // an idle engine commits its clock to its earliest admissible
            // pending, so it must wait its global turn (see
            // [`Engine::next_event_s`]).
            let next_engine = self
                .engines
                .iter()
                .enumerate()
                .filter(|(_, e)| e.has_work() && e.next_event_s() < horizon_s)
                .min_by(|(_, a), (_, b)| a.next_event_s().total_cmp(&b.next_event_s()))
                .map(|(i, _)| i);

            // Faults share the timeline with arrivals (the arbitration
            // protocol lives in [`FaultInjector::poll`], shared with
            // `ouro-disagg`'s event loop).
            if let Some(inj) = injector.as_deref_mut() {
                let next_event = next_engine.map(|i| self.engines[i].next_event_s());
                match inj.poll(next_arrival, next_event, horizon_s) {
                    crate::fault::FaultPoll::Fire(wafer) => {
                        inj.inject(&mut self.engines[wafer]);
                        continue;
                    }
                    crate::fault::FaultPoll::Drained => break,
                    crate::fault::FaultPoll::Wait => {}
                }
            }

            match (next_arrival, next_engine) {
                (None, None) => break,
                (Some(t_arr), engine) => {
                    if t_arr >= horizon_s {
                        // Arrivals beyond the horizon are never injected.
                        if engine.is_none() {
                            break;
                        }
                        self.step_engine(
                            engine.expect("checked above"),
                            &mut arrivals,
                            &mut gated,
                            think_time_s,
                            &mut think_rng,
                        );
                        continue;
                    }
                    // Route the arrival once every busy engine has simulated
                    // past it, so routing sees current state.
                    let min_event = engine.map(|i| self.engines[i].next_event_s());
                    match min_event {
                        Some(c) if c < t_arr => {
                            self.step_engine(
                                engine.expect("checked above"),
                                &mut arrivals,
                                &mut gated,
                                think_time_s,
                                &mut think_rng,
                            );
                        }
                        _ => {
                            let (t, idx) = arrivals.pop_front().expect("peeked above");
                            let wafer = self.route(&timed.arrivals[idx].request);
                            self.engines[wafer].submit(timed.arrivals[idx].request, t, idx, wafer);
                        }
                    }
                }
                (None, Some(i)) => {
                    self.step_engine(i, &mut arrivals, &mut gated, think_time_s, &mut think_rng);
                }
            }
        }

        self.report(timed, slo, horizon_s)
    }

    /// Advances one engine by one iteration, feeding closed-loop releases
    /// back into the arrival queue.
    fn step_engine(
        &mut self,
        i: usize,
        arrivals: &mut VecDeque<(f64, usize)>,
        gated: &mut VecDeque<usize>,
        think_time_s: f64,
        think_rng: &mut StdRng,
    ) {
        let completions = self.engines[i].step();
        for (_, t_done) in completions {
            release_gated(arrivals, gated, t_done, think_time_s, think_rng);
        }
    }

    /// Assembles the cluster-wide serving report.
    fn report(&self, timed: &TimedTrace, slo: &SloConfig, horizon_s: f64) -> ServingReport {
        let mut records: Vec<RequestRecord> =
            self.engines.iter().flat_map(|e| e.records().iter().copied()).collect();
        records.sort_by_key(|r| r.id);
        let queued: usize = self.engines.iter().map(Engine::queue_len).sum();
        let in_flight: usize = self.engines.iter().map(Engine::resident).sum();
        let dropped: usize = self.engines.iter().map(|e| e.stats().dropped as usize).sum();
        let evictions: u64 = self.engines.iter().map(|e| e.stats().evictions).sum();
        let prefilled_tokens: u64 = self.engines.iter().map(|e| e.stats().prefilled_tokens).sum();
        let cached_prefix_tokens: u64 = self.engines.iter().map(|e| e.stats().cached_prefix_tokens).sum();
        let end_s =
            self.engines.iter().map(Engine::clock_s).fold(timed.last_arrival_s(), f64::max).min(horizon_s);
        let utilization = if end_s > 0.0 {
            self.engines.iter().map(|e| e.busy_s().min(end_s) / end_s).sum::<f64>()
                / self.engines.len() as f64
        } else {
            0.0
        };
        ServingReport::from_records(
            &records,
            slo,
            timed.config.offered_rps(),
            crate::metrics::RunTotals {
                queued_at_horizon: queued,
                in_flight_at_horizon: in_flight,
                dropped,
                evictions,
                prefilled_tokens,
                cached_prefix_tokens,
                duration_s: end_s,
                utilization,
            },
        )
    }
}

/// Feeds one closed-loop release back into a sorted arrival queue after a
/// completion at `t_done`: the next gated request (if any) is released
/// after an exponential think time drawn from `think_rng`. Shared by the
/// colocated [`Cluster`] and `ouro-disagg`'s event loop so both serve
/// closed-loop traces with identical release semantics.
pub fn release_gated(
    arrivals: &mut VecDeque<(f64, usize)>,
    gated: &mut VecDeque<usize>,
    t_done: f64,
    think_time_s: f64,
    think_rng: &mut StdRng,
) {
    let Some(next) = gated.pop_front() else { return };
    let think: f64 = if think_time_s > 0.0 {
        ouro_workload::arrival::exponential(think_rng, 1.0 / think_time_s)
    } else {
        0.0
    };
    let release = t_done + think;
    // Released arrivals are appended in completion order; engine clocks
    // only move forward, so later releases sort later.
    let pos = arrivals.partition_point(|&(t, _)| t <= release);
    arrivals.insert(pos, (release, next));
}

/// Index of the item with the lowest score, breaking ties toward the
/// lowest index (a strict `<` scan; `Iterator::min_by` would return the
/// *last* minimum, making tie-breaks depend on pool size). Shared by the
/// colocated router and `ouro-disagg`'s placement policies so every
/// pool-selection decision in the workspace tie-breaks identically.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn pick_min_index<T>(items: &[T], score: impl Fn(&T) -> f64) -> usize {
    assert!(!items.is_empty(), "selection requires at least one candidate");
    let mut best = 0;
    let mut best_score = score(&items[0]);
    for (i, it) in items.iter().enumerate().skip(1) {
        let s = score(it);
        if s.total_cmp(&best_score).is_lt() {
            best = i;
            best_score = s;
        }
    }
    best
}

/// [`pick_min_index`] over the serviceable engines only (all engines when
/// the fleet is entirely dead), returning the winner's index in `engines`.
/// Shared by the colocated router and `ouro-disagg`'s placement policies so
/// both route around fault-degraded wafers identically.
pub fn pick_serviceable_min_index(engines: &[Engine], score: impl Fn(&Engine) -> f64) -> usize {
    let any_alive = engines.iter().any(Engine::is_serviceable);
    pick_routable(engines, any_alive, score)
}

/// Index of the engine best placed to serve `request`'s shared prefix:
/// among the serviceable engines (all when the pool is entirely dead), the
/// one holding the longest cached run of the prefix — ties toward the
/// least KV load, then the lowest index — falling back to plain
/// least-KV-load when nothing is cached anywhere (including every untagged
/// request). Shared by the colocated [`RoutePolicy::PrefixAffinity`]
/// router and `ouro-disagg`'s prefix-affine decode placement so routing
/// and placement steer identically.
pub fn pick_prefix_affine_index(engines: &[Engine], request: &ouro_workload::Request) -> usize {
    let any_alive = engines.iter().any(Engine::is_serviceable);
    let best_cached = engines
        .iter()
        .filter(|e| !any_alive || e.is_serviceable())
        .map(|e| e.prefix_cached_tokens(request))
        .max()
        .unwrap_or(0);
    if best_cached == 0 {
        return pick_routable(engines, any_alive, Engine::kv_load);
    }
    pick_routable(engines, any_alive, |e| {
        if e.prefix_cached_tokens(request) == best_cached {
            e.kv_load()
        } else {
            f64::INFINITY
        }
    })
}

/// Index of the lowest-scored engine among the serviceable ones (or all of
/// them when `any_alive` is false), ties toward the lowest index.
fn pick_routable(engines: &[Engine], any_alive: bool, score: impl Fn(&Engine) -> f64) -> usize {
    if !any_alive {
        return pick_min_index(engines, score);
    }
    let candidates: Vec<usize> = (0..engines.len()).filter(|&i| engines[i].is_serviceable()).collect();
    candidates[pick_min_index(&candidates, |&i| score(&engines[i]))]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_model::zoo;
    use ouro_sim::{OuroborosConfig, OuroborosSystem};
    use ouro_workload::{ArrivalConfig, LengthConfig, TraceGenerator};

    fn tiny_system() -> OuroborosSystem {
        OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
    }

    fn slo() -> SloConfig {
        SloConfig { ttft_s: 0.5, tpot_s: 0.05 }
    }

    fn timed(n: usize, rate: f64, seed: u64) -> ouro_workload::TimedTrace {
        let trace = TraceGenerator::new(seed).generate(&LengthConfig::fixed(64, 32), n);
        ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, seed)
    }

    #[test]
    fn cluster_completes_a_light_open_loop_workload() {
        let sys = tiny_system();
        let mut cluster =
            Cluster::replicate(&sys, 2, RoutePolicy::RoundRobin, EngineConfig::default()).unwrap();
        let report = cluster.run(&timed(40, 50.0, 1), &slo(), f64::INFINITY);
        assert_eq!(report.injected, 40);
        assert_eq!(report.completed, 40);
        assert!(report.is_conserved());
        assert!(report.ttft.count > 0);
        assert!(report.achieved_rps > 0.0);
        assert!(report.utilization > 0.0 && report.utilization <= 1.0);
    }

    #[test]
    fn round_robin_spreads_requests_evenly() {
        let sys = tiny_system();
        let mut cluster =
            Cluster::replicate(&sys, 4, RoutePolicy::RoundRobin, EngineConfig::default()).unwrap();
        let report = cluster.run(&timed(40, 100.0, 2), &slo(), f64::INFINITY);
        assert!(report.is_conserved());
        for e in cluster.engines() {
            assert_eq!(e.records().len(), 10);
        }
    }

    #[test]
    fn same_seed_same_report() {
        let sys = tiny_system();
        let run = || {
            let mut cluster =
                Cluster::replicate(&sys, 2, RoutePolicy::LeastKvLoad, EngineConfig::default()).unwrap();
            cluster.run(&timed(60, 200.0, 3), &slo(), f64::INFINITY)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn same_seed_same_report_for_every_policy() {
        // Regression for deterministic tie-breaking: JoinShortestQueue and
        // LeastKvLoad see frequent exact score ties (idle engines), which
        // must resolve identically run over run.
        let sys = tiny_system();
        for policy in [
            RoutePolicy::RoundRobin,
            RoutePolicy::JoinShortestQueue,
            RoutePolicy::LeastKvLoad,
            RoutePolicy::PrefixAffinity,
        ] {
            let run = || {
                let mut cluster = Cluster::replicate(&sys, 3, policy, EngineConfig::default()).unwrap();
                cluster.run(&timed(90, 500.0, 17), &slo(), f64::INFINITY)
            };
            assert_eq!(run(), run(), "{policy} must be deterministic under a fixed seed");
        }
    }

    #[test]
    fn score_ties_break_toward_the_lowest_wafer_index() {
        let sys = tiny_system();
        for policy in [RoutePolicy::JoinShortestQueue, RoutePolicy::LeastKvLoad, RoutePolicy::PrefixAffinity]
        {
            let mut cluster = Cluster::replicate(&sys, 4, policy, EngineConfig::default()).unwrap();
            // All four engines are idle and identical: a perfect four-way tie.
            let trace = TraceGenerator::new(8).generate(&LengthConfig::fixed(16, 4), 1);
            let t = ArrivalConfig::Poisson { rate_rps: 10.0 }.assign(&trace, 8);
            let report = cluster.run(&t, &slo(), f64::INFINITY);
            assert!(report.is_conserved());
            assert_eq!(cluster.engines()[0].records().len(), 1, "{policy}: a full tie must route to wafer 0");
        }
    }

    #[test]
    fn horizon_truncates_and_conserves() {
        let sys = tiny_system();
        let mut cluster =
            Cluster::replicate(&sys, 1, RoutePolicy::RoundRobin, EngineConfig::default()).unwrap();
        // Absurd overload with a tight horizon: arrivals span ~10ms but the
        // horizon cuts at 5ms, and 50k rps is far beyond one tiny wafer.
        let t = timed(500, 50_000.0, 4);
        let report = cluster.run(&t, &slo(), 0.005);
        assert!(
            report.is_conserved(),
            "injected {} != completed {} + queued {} + in-flight {} + dropped {}",
            report.injected,
            report.completed,
            report.queued_at_horizon,
            report.in_flight_at_horizon,
            report.dropped
        );
        assert!(report.injected < 500, "horizon must cut off late arrivals");
        assert!(report.queued_at_horizon + report.in_flight_at_horizon > 0);
        assert!(report.duration_s <= 0.005 + 1e-9);
    }

    #[test]
    fn closed_loop_serves_every_request() {
        let sys = tiny_system();
        let mut cluster =
            Cluster::replicate(&sys, 2, RoutePolicy::JoinShortestQueue, EngineConfig::default()).unwrap();
        let trace = TraceGenerator::new(9).generate(&LengthConfig::fixed(32, 16), 30);
        let t = ArrivalConfig::ClosedLoop { users: 4, think_time_s: 0.01 }.assign(&trace, 9);
        let report = cluster.run(&t, &slo(), f64::INFINITY);
        assert_eq!(report.injected, 30);
        assert_eq!(report.completed, 30);
        assert!(report.is_conserved());
        // With 4 users the cluster never holds more than 4 requests.
        let peak: usize = cluster.engines().iter().map(|e| e.stats().peak_resident).max().unwrap();
        assert!(peak <= 4, "closed loop caps concurrency, peak {peak}");
    }

    #[test]
    fn prefix_affinity_steers_sharers_to_the_wafer_holding_their_prefix() {
        use ouro_workload::SessionConfig;
        let sys = tiny_system();
        // One shared system prompt, every request on it, arrivals dense
        // enough that sharers overlap in the cache.
        let cfg = SessionConfig {
            groups: 1,
            shared_prefix_tokens: 256,
            share_ratio: 1.0,
            max_turns: 1,
            user_turn_tokens: 32,
            decode_tokens: 16,
        };
        let trace = cfg.generate(24, 21);
        let t = ArrivalConfig::Poisson { rate_rps: 2_000.0 }.assign(&trace, 21);
        let run = |policy| {
            let mut cluster = Cluster::replicate(&sys, 2, policy, EngineConfig::default()).unwrap();
            let r = cluster.run(&t, &slo(), f64::INFINITY);
            let loads: Vec<usize> = cluster.engines().iter().map(|e| e.records().len()).collect();
            (r, loads)
        };
        let (affinity_report, affinity_loads) = run(RoutePolicy::PrefixAffinity);
        let (spread_report, _) = run(RoutePolicy::JoinShortestQueue);
        assert!(affinity_report.is_conserved() && spread_report.is_conserved());
        assert!(
            affinity_loads[0] > affinity_loads[1],
            "prefix affinity must concentrate sharers on the wafer holding the chain: \
             {affinity_loads:?}"
        );
        assert!(
            affinity_report.cached_prefix_tokens >= spread_report.cached_prefix_tokens,
            "affinity routing cannot hit the prefix cache less than spreading: {} vs {}",
            affinity_report.cached_prefix_tokens,
            spread_report.cached_prefix_tokens
        );
        assert!(affinity_report.cached_prefix_tokens > 0, "overlapping sharers must hit the cache");
        assert!(
            affinity_report.prefilled_tokens < spread_report.prefilled_tokens,
            "prefix hits must cut total prefilled tokens"
        );
    }

    #[test]
    fn policies_route_differently_under_skew() {
        // One giant request pins wafer 0; LeastKvLoad steers followers away,
        // RoundRobin does not.
        let sys = tiny_system();
        let trace = {
            let mut t = TraceGenerator::new(5).generate(&LengthConfig::fixed(48, 24), 12);
            t.requests[0] = ouro_workload::Request::new(0, 600, 200);
            t
        };
        let t = ArrivalConfig::Poisson { rate_rps: 5_000.0 }.assign(&trace, 5);
        let run = |policy| {
            let mut cluster = Cluster::replicate(&sys, 2, policy, EngineConfig::default()).unwrap();
            let r = cluster.run(&t, &slo(), f64::INFINITY);
            let loads: Vec<usize> = cluster.engines().iter().map(|e| e.records().len()).collect();
            (r, loads)
        };
        let (rr_report, rr_loads) = run(RoutePolicy::RoundRobin);
        let (lkv_report, lkv_loads) = run(RoutePolicy::LeastKvLoad);
        assert!(rr_report.is_conserved() && lkv_report.is_conserved());
        assert_eq!(rr_loads, vec![6, 6], "round-robin splits 12 requests evenly");
        assert!(
            lkv_loads[0] < lkv_loads[1],
            "least-kv-load must shield the wafer pinned by the giant request: {lkv_loads:?}"
        );
    }
}
