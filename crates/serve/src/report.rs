//! The unified run report: one stable schema for every scenario.
//!
//! Every [`crate::scenario::Scenario`] run — colocated or disaggregated,
//! clean or fault-injected, prefix-cached or cold — returns one
//! [`RunReport`]: the serving metrics ([`crate::metrics::ServingReport`])
//! plus optional KV-migration accounting ([`MigrationStats`], present for
//! disaggregated deployments) and optional fault accounting
//! ([`crate::fault::FaultReport`], present when a fault plan was
//! configured). The flat JSON rendering ([`RunReport::json_object`])
//! always emits the same key set — sections that do not apply are `null` —
//! so `BENCH_*.json` trajectories stay comparable across experiments and
//! PRs; [`SCHEMA_VERSION`] is bumped on any breaking key change.

use crate::fault::FaultReport;
use crate::json::JsonObject;
use crate::metrics::ServingReport;

/// Version of the flat JSON schema emitted by [`RunReport::json_object`].
/// Bumped whenever a key is renamed, removed, or changes meaning; adding
/// new keys is backward compatible and does not bump it.
pub const SCHEMA_VERSION: u32 = 1;

/// The deployment shape and policies a report was produced under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeploymentInfo {
    /// `"colocated"` or `"disaggregated"`.
    pub kind: String,
    /// Total wafers of the deployment.
    pub wafers: usize,
    /// Wafers in the prefill pool (0 for colocated deployments).
    pub prefill_wafers: usize,
    /// Wafers in the decode pool (0 for colocated deployments, where every
    /// wafer runs both phases).
    pub decode_wafers: usize,
    /// Name of the routing policy over the entry pool.
    pub router: String,
    /// Name of the decode-placement policy (`None` for colocated).
    pub placement: Option<String>,
}

/// One KV migration from a prefill wafer to a decode wafer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Migration {
    /// Global request id.
    pub id: usize,
    /// Global index of the source (prefill) wafer.
    pub from_wafer: usize,
    /// Global index of the destination (decode) wafer.
    pub to_wafer: usize,
    /// Tokens that actually travelled the wire (the prompt at prefill
    /// completion minus the prefix tokens already resident on the target).
    pub tokens: u64,
    /// Prompt tokens deduplicated against the target's shared-prefix cache
    /// at announce time (skipped on the wire).
    pub deduped_tokens: u64,
    /// Bytes on the wire: wire tokens × the model's full per-token KV
    /// footprint.
    pub bytes: u64,
    /// Prefill-completion instant (migration start).
    pub start_s: f64,
    /// Instant the KV lands on the decode wafer and becomes admissible.
    pub arrive_s: f64,
    /// Optical wafer boundaries crossed.
    pub wafer_hops: usize,
    /// Link energy of the transfer.
    pub energy_j: f64,
}

/// KV-migration accounting of one disaggregated run.
///
/// Byte conservation is the core invariant: every byte of KV a prefill
/// wafer exports is either imported into a decode wafer's cache, still on
/// the wire (announced but not admitted) at the horizon, discarded because
/// the sequence could not fit even an empty decode cache, or deduplicated
/// against the target's shared-prefix cache at announce time (it never
/// touched the wire). The identity
/// `exported = imported + in_flight + dropped + deduped` must hold at any
/// observation instant; after a run drains completely the in-flight and
/// dropped terms are zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationStats {
    /// KV migrations started.
    pub migrations: usize,
    /// Tokens that actually travelled the wire across all migrations
    /// (whole prompts minus the prefix tokens already resident on each
    /// target — see [`Migration::tokens`]).
    pub migrated_tokens: u64,
    /// KV bytes exported by prefill wafers.
    pub exported_kv_bytes: u64,
    /// KV bytes imported (admitted) into decode caches.
    pub imported_kv_bytes: u64,
    /// KV bytes announced but still in flight (not admitted) at the horizon.
    pub in_flight_kv_bytes: u64,
    /// KV bytes discarded because the sequence could not fit an empty
    /// decode cache.
    pub dropped_kv_bytes: u64,
    /// KV bytes that never touched the wire because the target decode wafer
    /// already held the sequence's shared prefix at announce time.
    pub deduped_kv_bytes: u64,
    /// Mean migration wall-clock (setup + head latency + serialisation).
    pub mean_migration_s: f64,
    /// Slowest migration of the run.
    pub max_migration_s: f64,
    /// Total optical link energy spent on KV migration.
    pub link_energy_j: f64,
    /// Mean busy fraction of the prefill pool.
    pub prefill_utilization: f64,
    /// Mean busy fraction of the decode pool.
    pub decode_utilization: f64,
}

impl MigrationStats {
    /// The migration-byte conservation identity: every exported byte is
    /// imported, in flight, accounted as dropped, or deduplicated against
    /// the target's prefix cache.
    pub fn kv_bytes_conserved(&self) -> bool {
        self.exported_kv_bytes
            == self.imported_kv_bytes
                + self.in_flight_kv_bytes
                + self.dropped_kv_bytes
                + self.deduped_kv_bytes
    }

    /// Mean migrated KV per request, in bytes (0 with no migrations).
    pub fn mean_migration_bytes(&self) -> f64 {
        if self.migrations == 0 {
            0.0
        } else {
            self.exported_kv_bytes as f64 / self.migrations as f64
        }
    }
}

/// Aggregate outcome of one scenario run — the single report type every
/// entry point (examples, benches, the `experiments` binary, sweeps,
/// shootouts) produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Version of the flat JSON schema ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The deployment shape and policies of the run.
    pub deployment: DeploymentInfo,
    /// SLO metrics over the per-request records (for disaggregated runs,
    /// merged across pools: arrival and prefill admission from the prefill
    /// side, first token and completion from the decode side).
    pub serving: ServingReport,
    /// KV-migration accounting (`Some` iff the deployment is
    /// disaggregated).
    pub migration: Option<MigrationStats>,
    /// Fault accounting (`Some` iff a fault plan was configured).
    pub faults: Option<FaultReport>,
}

impl RunReport {
    /// Request conservation: every injected request is accounted for
    /// exactly once as completed, queued, in flight, or dropped.
    pub fn is_conserved(&self) -> bool {
        self.serving.is_conserved()
    }

    /// KV-migration byte conservation (vacuously true for colocated runs).
    pub fn kv_bytes_conserved(&self) -> bool {
        self.migration.as_ref().is_none_or(MigrationStats::kv_bytes_conserved)
    }

    /// Flattens the report into the one stable JSON row schema. Every call
    /// emits the same keys in the same order; sections that do not apply
    /// to this run (migration, faults) render as `null`.
    pub fn json_object(&self) -> JsonObject {
        let mut o = JsonObject::new()
            .int("schema_version", self.schema_version as u64)
            .str("deployment", &self.deployment.kind)
            .int("wafers", self.deployment.wafers as u64)
            .int("prefill_wafers", self.deployment.prefill_wafers as u64)
            .int("decode_wafers", self.deployment.decode_wafers as u64)
            .str("router", &self.deployment.router);
        o = match &self.deployment.placement {
            Some(p) => o.str("placement", p),
            None => o.null("placement"),
        };
        let s = &self.serving;
        o = match s.offered_rps {
            Some(r) => o.num("offered_rps", r),
            None => o.null("offered_rps"),
        };
        o = o
            .int("injected", s.injected as u64)
            .int("completed", s.completed as u64)
            .int("queued_at_horizon", s.queued_at_horizon as u64)
            .int("in_flight_at_horizon", s.in_flight_at_horizon as u64)
            .int("dropped", s.dropped as u64)
            .int("evictions", s.evictions)
            .int("prefilled_tokens", s.prefilled_tokens)
            .int("cached_prefix_tokens", s.cached_prefix_tokens)
            .num("duration_s", s.duration_s)
            .num("achieved_rps", s.achieved_rps)
            .num("output_tokens_per_s", s.output_tokens_per_s)
            .num("goodput_rps", s.goodput_rps)
            .num("slo_attainment", s.slo_attainment)
            .num("utilization", s.utilization)
            .num("ttft_mean_s", s.ttft.mean_s)
            .num("ttft_p50_s", s.ttft.p50_s)
            .num("ttft_p95_s", s.ttft.p95_s)
            .num("ttft_p99_s", s.ttft.p99_s)
            .num("ttft_max_s", s.ttft.max_s)
            .num("tpot_mean_s", s.tpot.mean_s)
            .num("tpot_p50_s", s.tpot.p50_s)
            .num("tpot_p95_s", s.tpot.p95_s)
            .num("tpot_p99_s", s.tpot.p99_s)
            .num("tpot_max_s", s.tpot.max_s)
            .num("e2e_mean_s", s.e2e.mean_s)
            .num("e2e_p50_s", s.e2e.p50_s)
            .num("e2e_p95_s", s.e2e.p95_s)
            .num("e2e_p99_s", s.e2e.p99_s)
            .num("e2e_max_s", s.e2e.max_s);
        o = match &self.migration {
            Some(m) => o
                .int("migrations", m.migrations as u64)
                .int("migrated_tokens", m.migrated_tokens)
                .int("exported_kv_bytes", m.exported_kv_bytes)
                .int("imported_kv_bytes", m.imported_kv_bytes)
                .int("in_flight_kv_bytes", m.in_flight_kv_bytes)
                .int("dropped_kv_bytes", m.dropped_kv_bytes)
                .int("deduped_kv_bytes", m.deduped_kv_bytes)
                .num("mean_migration_s", m.mean_migration_s)
                .num("max_migration_s", m.max_migration_s)
                .num("link_energy_j", m.link_energy_j)
                .num("prefill_utilization", m.prefill_utilization)
                .num("decode_utilization", m.decode_utilization),
            None => [
                "migrations",
                "migrated_tokens",
                "exported_kv_bytes",
                "imported_kv_bytes",
                "in_flight_kv_bytes",
                "dropped_kv_bytes",
                "deduped_kv_bytes",
                "mean_migration_s",
                "max_migration_s",
                "link_energy_j",
                "prefill_utilization",
                "decode_utilization",
            ]
            .iter()
            .fold(o, |o, k| o.null(k)),
        };
        match &self.faults {
            Some(f) => o
                .num("fault_mtbf_s", f.config.mtbf_s)
                .int("faults_injected", f.faults_injected)
                .int("chains_built", f.chains_built)
                .int("tiles_moved", f.tiles_moved)
                .int("kv_cores_lost", f.kv_cores_lost)
                .int("sequences_recomputed", f.sequences_recomputed)
                .int("kv_tokens_evicted", f.kv_tokens_evicted)
                .int("kv_bytes_evicted", f.kv_bytes_evicted)
                .int("unrepaired_faults", f.unrepaired_faults)
                .int("dead_wafers", f.dead_wafers as u64)
                .num("total_stall_s", f.total_stall_s)
                .num("dead_time_s", f.dead_time_s)
                .num("mean_chain_len", f.mean_chain_len())
                .num("availability", f.availability),
            None => [
                "fault_mtbf_s",
                "faults_injected",
                "chains_built",
                "tiles_moved",
                "kv_cores_lost",
                "sequences_recomputed",
                "kv_tokens_evicted",
                "kv_bytes_evicted",
                "unrepaired_faults",
                "dead_wafers",
                "total_stall_s",
                "dead_time_s",
                "mean_chain_len",
                "availability",
            ]
            .iter()
            .fold(o, |o, k| o.null(k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{RunTotals, SloConfig};

    fn stats(exported: u64, imported: u64, in_flight: u64, dropped: u64) -> MigrationStats {
        MigrationStats {
            migrations: 2,
            migrated_tokens: 100,
            exported_kv_bytes: exported,
            imported_kv_bytes: imported,
            in_flight_kv_bytes: in_flight,
            dropped_kv_bytes: dropped,
            deduped_kv_bytes: 0,
            mean_migration_s: 0.001,
            max_migration_s: 0.002,
            link_energy_j: 0.1,
            prefill_utilization: 0.5,
            decode_utilization: 0.5,
        }
    }

    fn report(migration: Option<MigrationStats>) -> RunReport {
        RunReport {
            schema_version: SCHEMA_VERSION,
            deployment: DeploymentInfo {
                kind: if migration.is_some() { "disaggregated" } else { "colocated" }.to_string(),
                wafers: 2,
                prefill_wafers: if migration.is_some() { 1 } else { 0 },
                decode_wafers: if migration.is_some() { 1 } else { 0 },
                router: "least-kv-load".to_string(),
                placement: migration.is_some().then(|| "least-kv-load".to_string()),
            },
            serving: ServingReport::from_records(
                &[],
                &SloConfig { ttft_s: 1.0, tpot_s: 0.1 },
                Some(1.0),
                RunTotals::default(),
            ),
            migration,
            faults: None,
        }
    }

    #[test]
    fn conservation_identity() {
        assert!(stats(100, 100, 0, 0).kv_bytes_conserved());
        assert!(stats(100, 60, 30, 10).kv_bytes_conserved());
        assert!(!stats(100, 60, 30, 0).kv_bytes_conserved());
    }

    #[test]
    fn deduped_bytes_close_the_conservation_identity() {
        let mut s = stats(100, 60, 10, 0);
        assert!(!s.kv_bytes_conserved());
        s.deduped_kv_bytes = 30;
        assert!(s.kv_bytes_conserved(), "prefix-deduplicated bytes complete the identity");
    }

    #[test]
    fn mean_migration_bytes_averages_over_migrations() {
        assert_eq!(stats(100, 100, 0, 0).mean_migration_bytes(), 50.0);
        let mut s = stats(0, 0, 0, 0);
        s.migrations = 0;
        assert_eq!(s.mean_migration_bytes(), 0.0);
    }

    #[test]
    fn colocated_runs_conserve_kv_bytes_vacuously() {
        assert!(report(None).kv_bytes_conserved());
        assert!(report(Some(stats(10, 10, 0, 0))).kv_bytes_conserved());
        assert!(!report(Some(stats(10, 5, 0, 0))).kv_bytes_conserved());
    }

    #[test]
    fn json_schema_is_identical_with_and_without_optional_sections() {
        let colocated = report(None).json_object();
        let disagg = report(Some(stats(100, 100, 0, 0))).json_object();
        assert_eq!(colocated.keys(), disagg.keys(), "one schema regardless of scenario shape");
        assert!(colocated.render().contains("\"migrations\": null"));
        assert!(disagg.render().contains("\"migrations\": 2"));
        assert!(colocated.render().contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
    }
}
