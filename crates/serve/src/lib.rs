//! Online serving simulator for Ouroboros deployments.
//!
//! The offline crates answer "how fast does a wafer chew through a fixed
//! batch"; this crate answers the production question — "how much live
//! traffic can a deployment absorb while meeting latency SLOs". It layers
//! four pieces on top of [`ouro_sim::OuroborosSystem`]:
//!
//! * **arrival processes** (in `ouro-workload`): open-loop Poisson and
//!   bursty-Gamma traffic plus closed-loop think-time clients
//!   ([`ouro_workload::ArrivalConfig`]),
//! * **a continuous-batching engine** ([`engine::Engine`]): discrete-event
//!   iterations that admit requests FCFS into the distributed KV cache under
//!   the offline scheduler's admission/eviction rules, interleave chunked
//!   prefill with decode in the token-grained pipeline, and charge wall-clock
//!   from the hardware-derived [`ouro_sim::HwStageTimes`],
//! * **a multi-wafer cluster** ([`cluster::Cluster`]): one model replica per
//!   wafer behind a router with pluggable policies
//!   ([`cluster::RoutePolicy`]: round-robin, least-KV-load,
//!   join-shortest-queue, prefix-affinity),
//! * **shared-prefix KV reuse**: requests tagged with an
//!   [`ouro_workload::SharedPrefix`] share the whole-block portion of
//!   their common prompt in the cache ([`ouro_kvcache::KvManager`]'s
//!   refcounted copy-on-write chains); the engine charges prefill only
//!   for the uncached suffix and the prefix-affinity router steers
//!   sharers to the wafer already holding their prefix,
//! * **SLO metrics and load sweeps** ([`metrics`], [`sweep`]): TTFT / TPOT /
//!   E2E p50/p95/p99, goodput under an SLO, utilization, and
//!   throughput-vs-latency curves over offered load,
//! * **runtime fault injection** ([`fault`]): a seeded MTBF process fires
//!   mid-run, each fault is healed by a replacement-chain remap
//!   (`ouro_mapping::fault`), the absorbed KV is evicted and recomputed,
//!   routers steer around degraded wafers, and a [`FaultReport`] accounts
//!   availability and tail-latency inflation against the fault-free run.
//!
//! # Example
//!
//! ```
//! use ouro_model::zoo;
//! use ouro_serve::{capacity_rps_estimate, ideal_latencies, LoadSweep, SloConfig};
//! use ouro_sim::{OuroborosConfig, OuroborosSystem};
//! use ouro_workload::LengthConfig;
//!
//! let system = OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap();
//! let lengths = LengthConfig::fixed(64, 32);
//! let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
//! let (ttft, tpot) = ideal_latencies(system.stage_times(), 64, 96);
//! let mut sweep = LoadSweep::around_capacity(capacity, 2, lengths, SloConfig::with_slack(ttft, tpot, 10.0));
//! sweep.requests = 40;
//! let points = sweep.run(&system);
//! assert_eq!(points.len(), 6);
//! assert!(points[0].report.is_conserved());
//! ```

pub mod cluster;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod sweep;

pub use cluster::{
    pick_min_index, pick_prefix_affine_index, pick_serviceable_min_index, release_gated, Cluster, RoutePolicy,
};
pub use engine::{Engine, EngineConfig, EngineFaultImpact, EngineStats};
pub use fault::{FaultComparison, FaultConfig, FaultInjector, FaultPoll, FaultReport};
pub use metrics::{LatencyStats, RequestRecord, RunTotals, ServingReport, SloConfig};
pub use sweep::{capacity_rps_estimate, format_sweep, ideal_latencies, LoadSweep, SweepPoint};
