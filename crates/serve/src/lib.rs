//! Online serving simulator for Ouroboros deployments.
//!
//! The offline crates answer "how fast does a wafer chew through a fixed
//! batch"; this crate answers the production question — "how much live
//! traffic can a deployment absorb while meeting latency SLOs". Its
//! experiment-facing API is one composable builder:
//!
//! * **[`Scenario`]** ([`scenario`]): compose a deployment
//!   ([`Scenario::colocated`] replicas or [`Scenario::disaggregated`]
//!   prefill/decode pools with KV migration over the optical fabric), a
//!   timed workload ([`ouro_workload::ArrivalConfig`]: open-loop Poisson,
//!   bursty Gamma, closed-loop think-time clients, session traces),
//!   routing/placement policies, an optional runtime fault plan,
//!   prefix-caching and SLO config — then `.run()` drives one shared
//!   discrete-event loop and returns one [`RunReport`] with a stable JSON
//!   schema ([`report::SCHEMA_VERSION`]).
//!
//! Underneath sit the building blocks:
//!
//! * **a continuous-batching engine** ([`engine::Engine`]): discrete-event
//!   iterations that admit requests FCFS into the distributed KV cache under
//!   the offline scheduler's admission/eviction rules (one admission path,
//!   [`Engine::submit_with`], parameterized by [`Admission`]), interleave
//!   chunked prefill with decode in the token-grained pipeline, and charge
//!   wall-clock from the hardware-derived [`ouro_sim::HwStageTimes`],
//! * **open policy traits** ([`policy`]): object-safe [`Router`] /
//!   [`Placement`] with the classic built-ins as constructors
//!   ([`routers`], [`placements`]) — all tie-breaking funnels through
//!   [`pick_min_index`] so equal scores resolve to the lowest wafer index,
//! * **shared-prefix KV reuse**: requests tagged with an
//!   [`ouro_workload::SharedPrefix`] share the whole-block portion of
//!   their common prompt in the cache ([`ouro_kvcache::KvManager`]'s
//!   refcounted copy-on-write chains); the engine charges prefill only
//!   for the uncached suffix and prefix-affinity policies steer sharers
//!   to the wafer already holding their prefix,
//! * **SLO metrics and load sweeps** ([`metrics`], [`sweep`]): TTFT / TPOT /
//!   E2E p50/p95/p99, goodput under an SLO, utilization, and
//!   throughput-vs-latency curves over offered load,
//! * **runtime fault injection** ([`fault`]): a seeded MTBF process fires
//!   mid-run, each fault is healed by a replacement-chain remap
//!   (`ouro_mapping::fault`), the absorbed KV is evicted and recomputed,
//!   routers steer around degraded wafers, and the report's fault section
//!   accounts availability and tail-latency inflation.
//!
//! # Example
//!
//! ```
//! use ouro_model::zoo;
//! use ouro_serve::{capacity_rps_estimate, ideal_latencies, LoadSweep, SloConfig};
//! use ouro_sim::{OuroborosConfig, OuroborosSystem};
//! use ouro_workload::LengthConfig;
//!
//! let system = OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap();
//! let lengths = LengthConfig::fixed(64, 32);
//! let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
//! let (ttft, tpot) = ideal_latencies(system.stage_times(), 64, 96);
//! let mut sweep = LoadSweep::around_capacity(capacity, 2, lengths, SloConfig::with_slack(ttft, tpot, 10.0));
//! sweep.requests = 40;
//! let points = sweep.run(&system);
//! assert_eq!(points.len(), 6);
//! assert!(points[0].report.is_conserved());
//! ```

pub(crate) mod arena;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod parallel;
pub mod policy;
pub mod report;
pub mod scenario;
pub mod snapshot;
pub mod stage;
pub mod sweep;

/// The workspace's dependency-free JSON writer (re-exported from
/// `ouro-trace`, where it moved so the observability exporters and the
/// serving stack share one implementation).
pub use ouro_trace::json;
pub use ouro_trace::{
    Analysis, Counters, EventKind, LoopProfile, PhaseStats, RequestPhases, RingSink, SpanPhase,
    TelemetryConfig, TelemetryRecorder, TelemetrySample, Trace, TraceEvent, TraceSink, Tracer, WaferGauges,
    WaferUtilization, ANALYZE_SCHEMA_VERSION, BENCH_SCHEMA_VERSION, PHASE_NAMES, TELEMETRY_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
};

pub use engine::{Admission, Engine, EngineConfig, EngineFaultImpact, EngineStats};
pub use fault::{FaultComparison, FaultConfig, FaultInjector, FaultPoll, FaultReport};
pub use metrics::{LatencyStats, RequestRecord, RunTotals, ServingReport, SloConfig};
pub use parallel::{default_threads, parallel_map_indexed};
pub use policy::{
    pick_min_index, pick_prefix_affine_index, pick_serviceable_min_index, pick_serviceable_min_index_by,
    placements, routers, Placement, Router,
};
pub use report::{DeploymentInfo, Migration, MigrationStats, RunReport, SCHEMA_VERSION};
pub use scenario::{Deployment, DisaggConfig, RunOutcome, RunState, Scenario};
pub use snapshot::{Snapshot, SNAPSHOT_SCHEMA_VERSION};
pub use stage::{event_kind, Stage, EVENT_OWNERS};
pub use sweep::{capacity_rps_estimate, format_sweep, ideal_latencies, LoadSweep, SweepPoint};
