//! Degenerate-shape regression tests for the report pipeline's ratios.
//!
//! A zero-request workload produces a zero-span run, and every ratio on
//! the way to the JSON row — utilization (busy/span), achieved/goodput
//! rates (count/span), fault availability (lost/offered wafer-time),
//! migration means (sum/count) — divides by that span or count. The
//! zero-span utilization NaN was a real bug (`busy_s / 0.0` leaked NaN
//! into the report), so the whole family is pinned here: one table of
//! degenerate deployment shapes through the full scenario path, plus
//! table-driven unit checks of each sibling ratio site.

use ouro_model::zoo;
use ouro_serve::{
    FaultConfig, FaultInjector, LatencyStats, RunReport, RunTotals, Scenario, ServingReport, SloConfig,
};
use ouro_sim::{OuroborosConfig, OuroborosSystem};
use ouro_workload::{ArrivalConfig, LengthConfig, TraceGenerator};

fn tiny_system() -> OuroborosSystem {
    OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
}

/// Every floating-point field of the report, named for the failure message.
fn float_fields(r: &RunReport) -> Vec<(String, f64)> {
    let s = &r.serving;
    let mut v = vec![
        ("duration_s".to_string(), s.duration_s),
        ("achieved_rps".to_string(), s.achieved_rps),
        ("output_tokens_per_s".to_string(), s.output_tokens_per_s),
        ("goodput_rps".to_string(), s.goodput_rps),
        ("slo_attainment".to_string(), s.slo_attainment),
        ("utilization".to_string(), s.utilization),
    ];
    for (name, l) in [("ttft", &s.ttft), ("tpot", &s.tpot), ("e2e", &s.e2e)] {
        v.push((format!("{name}_mean_s"), l.mean_s));
        v.push((format!("{name}_p50_s"), l.p50_s));
        v.push((format!("{name}_p95_s"), l.p95_s));
        v.push((format!("{name}_p99_s"), l.p99_s));
        v.push((format!("{name}_max_s"), l.max_s));
    }
    if let Some(m) = &r.migration {
        v.push(("mean_migration_s".to_string(), m.mean_migration_s));
        v.push(("max_migration_s".to_string(), m.max_migration_s));
        v.push(("link_energy_j".to_string(), m.link_energy_j));
        v.push(("prefill_utilization".to_string(), m.prefill_utilization));
        v.push(("decode_utilization".to_string(), m.decode_utilization));
    }
    if let Some(f) = &r.faults {
        v.push(("availability".to_string(), f.availability));
        v.push(("total_stall_s".to_string(), f.total_stall_s));
        v.push(("dead_time_s".to_string(), f.dead_time_s));
        v.push(("fault_duration_s".to_string(), f.duration_s));
    }
    v
}

fn assert_all_finite(label: &str, r: &RunReport) {
    for (name, value) in float_fields(r) {
        assert!(value.is_finite(), "{label}: report field {name} is non-finite ({value})");
    }
}

#[test]
fn zero_request_runs_produce_finite_reports() {
    // The regression table: every deployment shape on an empty workload.
    // Zero requests means zero events, a zero wall-clock span, and every
    // span-normalised ratio at its 0/0 corner.
    let sys = tiny_system();
    let empty = ArrivalConfig::Poisson { rate_rps: 100.0 }
        .assign(&TraceGenerator::new(7).generate(&LengthConfig::fixed(64, 16), 0), 7);
    let slo = SloConfig { ttft_s: 0.5, tpot_s: 0.05 };
    let shapes: Vec<(&str, Scenario)> = vec![
        ("colocated-1", Scenario::colocated(1)),
        ("colocated-2", Scenario::colocated(2)),
        ("disaggregated-1p1d", Scenario::disaggregated(1, 1)),
        ("colocated-faulty", Scenario::colocated(2).faults(FaultConfig::new(1e6, 7))),
        ("disagg-prefix", Scenario::disaggregated(1, 1).prefix_caching(true)),
    ];
    for (label, scenario) in shapes {
        let r = scenario.slo(slo).workload(empty.clone()).run(&sys).unwrap();
        assert_all_finite(label, &r);
        assert_eq!(r.serving.injected, 0, "{label}");
        assert_eq!(r.serving.duration_s, 0.0, "{label}");
        assert_eq!(r.serving.utilization, 0.0, "{label}: zero-span utilization must be 0, not NaN");
        assert!(r.is_conserved(), "{label}");
    }
}

#[test]
fn empty_serving_report_is_zero_not_nan() {
    // The metrics-layer ratio site in isolation: no records, zero totals.
    let slo = SloConfig { ttft_s: 0.5, tpot_s: 0.05 };
    let r = ServingReport::from_records(&[], &slo, None, RunTotals::default());
    for (name, value) in [
        ("achieved_rps", r.achieved_rps),
        ("output_tokens_per_s", r.output_tokens_per_s),
        ("goodput_rps", r.goodput_rps),
        ("slo_attainment", r.slo_attainment),
        ("utilization", r.utilization),
    ] {
        assert!(value == 0.0, "empty report field {name} must be exactly 0, got {value}");
    }
    assert!(r.is_conserved());
}

#[test]
fn latency_stats_are_total_on_degenerate_samples() {
    // Table-driven over the sample sets that would poison a naive
    // sort-and-divide summary.
    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("empty", vec![]),
        ("all-nan", vec![f64::NAN, f64::NAN]),
        ("all-inf", vec![f64::INFINITY, f64::NEG_INFINITY]),
        ("mixed", vec![f64::NAN, 0.25, f64::INFINITY, 0.75]),
    ];
    for (label, samples) in cases {
        let finite = samples.iter().filter(|s| s.is_finite()).count();
        let stats = LatencyStats::from_samples(samples);
        assert_eq!(stats.count, finite, "{label}");
        for (name, value) in [
            ("mean_s", stats.mean_s),
            ("p50_s", stats.p50_s),
            ("p95_s", stats.p95_s),
            ("p99_s", stats.p99_s),
            ("max_s", stats.max_s),
        ] {
            assert!(value.is_finite(), "{label}: {name} is non-finite ({value})");
        }
    }
}

#[test]
fn fault_report_over_zero_span_is_fully_available() {
    // The availability ratio divides lost wafer-time by offered
    // wafer-time; a zero-duration run offers none.
    let sys = tiny_system();
    let injector = FaultInjector::new(&sys, 2, FaultConfig::new(1e9, 3), 1.0);
    let report = injector.report(0.0);
    assert!(report.availability.is_finite(), "zero-span availability must be finite");
    assert_eq!(report.availability, 1.0);
    assert_eq!(report.mean_chain_len(), 0.0);
}
