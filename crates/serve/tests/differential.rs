//! Randomized differential tests of the fast simulator paths.
//!
//! Debug builds cross-check every fast path against its naive reference on
//! every call — the driver's event calendar against a linear engine scan,
//! and the KV block counters against full bitmap scans — so *running* a
//! randomized scenario matrix under `cargo test` is itself a differential
//! test: any divergence between the calendar and the scan panics at the
//! first step that disagrees. On top of the structural asserts, every
//! shape is run twice and the two [`ouro_serve::RunReport`]s must be
//! bit-identical, and the threaded sweep drivers must render byte-identical
//! JSON at any worker count.
//!
//! The shapes are drawn through the vendored `proptest` harness (seeded
//! from the test name), so a failure reproduces exactly.

use ouro_model::zoo;
use ouro_serve::{FaultConfig, LoadSweep, Scenario, SloConfig};
use ouro_sim::{OuroborosConfig, OuroborosSystem};
use ouro_workload::{ArrivalConfig, LengthConfig, SessionConfig, TraceGenerator};
use proptest::prelude::*;

fn tiny_system() -> OuroborosSystem {
    OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
}

/// A splitmix-style generator expanding one proptest-drawn seed into a
/// full scenario shape (proptest strategies compose over scalars; the
/// conditional shape structure is easier to draw imperatively).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform pick in `[lo, hi]`.
    fn pick(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// One randomized shape: deployment × workload × arrival × faults ×
/// prefix caching, all drawn from the LCG.
fn random_scenario(rng: &mut Lcg) -> (String, Scenario) {
    let wafers = rng.pick(1, 3) as usize;
    let requests = rng.pick(10, 40) as usize;
    let prompt = rng.pick(32, 160) as usize;
    let decode = rng.pick(8, 32) as usize;
    let rate = rng.pick(50, 600) as f64;
    let seed = rng.next();
    let sessions = rng.pick(0, 2) == 0;
    let trace = if sessions {
        SessionConfig::chat(4, 0.5).generate(requests, seed)
    } else {
        TraceGenerator::new(seed).generate(&LengthConfig::fixed(prompt, decode), requests)
    };
    let timed = if rng.pick(0, 1) == 0 {
        ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, seed)
    } else {
        ArrivalConfig::Bursty { rate_rps: rate, cv: 4.0 }.assign(&trace, seed)
    };
    let disagg = wafers >= 2 && rng.pick(0, 1) == 0;
    let mut scenario = if disagg {
        let prefill = rng.pick(1, wafers as u64 - 1) as usize;
        Scenario::disaggregated(prefill, wafers - prefill)
    } else {
        Scenario::colocated(wafers)
    };
    let faulty = rng.pick(0, 2) == 0;
    if faulty {
        scenario = scenario.faults(FaultConfig::new(0.02 + rng.pick(0, 100) as f64 * 1e-3, seed));
    }
    let prefix = sessions && rng.pick(0, 1) == 0;
    scenario = scenario.prefix_caching(prefix).slo(SloConfig { ttft_s: 0.5, tpot_s: 0.05 }).workload(timed);
    let label = format!(
        "wafers={wafers} requests={requests} disagg={disagg} faulty={faulty} \
         sessions={sessions} prefix={prefix} seed={seed}"
    );
    (label, scenario)
}

proptest! {
    /// Any composed scenario shape survives the debug cross-checks and
    /// replays bit-identically. Running at all exercises the
    /// debug_assert differential checks of the event calendar and KV
    /// counters on every simulated event; the repeat pins determinism.
    #[test]
    fn randomized_shapes_run_the_debug_cross_checks_and_repeat_bit_identically(
        shape_seed in 0u64..u64::MAX
    ) {
        let sys = tiny_system();
        let (label, scenario) = random_scenario(&mut Lcg(shape_seed));
        let first = scenario.run(&sys).unwrap_or_else(|e| panic!("{label}: {e:?}"));
        prop_assert!(first.is_conserved(), "{}", label);
        prop_assert!(first.kv_bytes_conserved(), "{}", label);
        let second = scenario.run(&sys).unwrap();
        prop_assert_eq!(first, second, "{}: repeated run diverged", label);
    }
}

#[test]
fn sweep_json_is_byte_identical_at_any_thread_count() {
    // The parallel sweep reassembles results in input order, so worker
    // count must never leak into the output — checked at the strictest
    // level: the rendered JSON rows.
    let sys = tiny_system();
    let slo = SloConfig { ttft_s: 0.5, tpot_s: 0.05 };
    let mut sweep = LoadSweep::around_capacity(800.0, 2, LengthConfig::fixed(96, 24), slo);
    sweep.requests = 30;
    sweep.seed = 17;
    let render = |points: &[ouro_serve::SweepPoint]| -> String {
        let rows: Vec<_> = points.iter().map(|p| p.report.json_object()).collect();
        ouro_serve::json::render_array(&rows)
    };
    sweep.threads = 1;
    let serial = render(&sweep.run(&sys));
    for threads in [2, 4, 8] {
        sweep.threads = threads;
        assert_eq!(serial, render(&sweep.run(&sys)), "threads={threads} changed the sweep JSON");
    }
}
