//! Property tests of the staged pipeline: stage-order traversal and
//! queue-population conservation, checked at *every* event boundary of a
//! stepped run.
//!
//! Conservation: at any instant between two [`ouro_serve::RunState`] steps,
//! every injected request is in exactly one place — still waiting (open
//! arrival or gated closed-loop user), queued in some engine's pending
//! arena, resident in some active set, retired, or dropped:
//!
//! ```text
//! waiting + Σ (queue_len + resident) + completed + Σ dropped = injected
//! ```
//!
//! Stage order: in the merged lifecycle trace, each request's events only
//! walk the pipeline forward (`Arrival → Admission → Prefill → Decode →
//! Complete`), except for re-entries into Admission (eviction requeues and
//! imported-KV re-admission on the decode wafer) which restart the climb.
//! Migrate-stage events span two wafers and interleave with the target's
//! re-admission (a partially deduplicated import legitimately recomputes
//! prefill *after* its `migrate_arrive`), so they are checked by their own
//! pairing property — every `migrate_start` has a `migrate_arrive` at or
//! after it — rather than by the single-wafer rank walk. The ranks come
//! from the single [`ouro_serve::event_kind`] ownership table, so this is
//! also an end-to-end test of that mapping.

use ouro_model::zoo;
use ouro_serve::{event_kind, FaultConfig, RunState, Scenario, SloConfig, Stage, TraceEvent};
use ouro_sim::{OuroborosConfig, OuroborosSystem};
use ouro_workload::{ArrivalConfig, LengthConfig, SessionConfig, TraceGenerator};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn tiny_system() -> OuroborosSystem {
    OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
}

/// One of the four golden scenario shapes, parameterized by a draw seed:
/// colocated/disaggregated × faults × prefix caching.
fn golden_shape(shape: usize, seed: u64) -> (String, Scenario, usize) {
    let slo = SloConfig { ttft_s: 0.5, tpot_s: 0.05 };
    let requests = 24 + (seed % 13) as usize;
    let (label, scenario) = match shape {
        0 => {
            let trace = TraceGenerator::new(seed).generate(&LengthConfig::fixed(96, 24), requests);
            let timed = ArrivalConfig::Poisson { rate_rps: 300.0 }.assign(&trace, seed);
            ("colocated", Scenario::colocated(2).prefix_caching(false).workload(timed))
        }
        1 => {
            let trace = SessionConfig::chat(4, 0.5).generate(requests, seed);
            let timed = ArrivalConfig::Poisson { rate_rps: 400.0 }.assign(&trace, seed);
            ("disagg-prefix", Scenario::disaggregated(1, 2).prefix_caching(true).workload(timed))
        }
        2 => {
            let trace = TraceGenerator::new(seed).generate(&LengthConfig::fixed(128, 16), requests);
            let timed = ArrivalConfig::ClosedLoop { users: 5, think_time_s: 0.02 }.assign(&trace, seed);
            ("colocated-faults", Scenario::colocated(2).faults(FaultConfig::new(0.08, seed)).workload(timed))
        }
        _ => {
            let trace = SessionConfig::chat(3, 0.4).generate(requests, seed);
            let timed = ArrivalConfig::Bursty { rate_rps: 350.0, cv: 4.0 }.assign(&trace, seed);
            (
                "disagg-faults-prefix",
                Scenario::disaggregated(1, 1)
                    .prefix_caching(true)
                    .faults(FaultConfig::new(0.06, seed))
                    .workload(timed),
            )
        }
    };
    (format!("{label} seed={seed} requests={requests}"), scenario.slo(slo).trace(true), requests)
}

/// Where every injected request currently is, summed over the run.
fn population(run: &RunState) -> usize {
    let engine_side: usize = run.engines().iter().map(|e| e.queue_len() + e.resident()).sum();
    let dropped: usize = run.engines().iter().map(|e| e.stats().dropped as usize).sum();
    run.waiting() + engine_side + run.completed() as usize + dropped
}

/// Pipeline rank of a stage in the single-wafer lifecycle walk; `None`
/// for the out-of-band fault pseudo-stage and for Migrate (whose
/// inter-wafer events carry their own pairing property instead).
fn rank(stage: Stage) -> Option<usize> {
    Stage::ALL.iter().position(|s| *s == stage).filter(|_| stage != Stage::Fault && stage != Stage::Migrate)
}

/// Asserts the stage-order traversal property over one request's events,
/// which arrive sorted by time (stream order breaking ties).
fn assert_stage_order(label: &str, id: usize, events: &[&TraceEvent]) {
    let arrivals = events.iter().filter(|e| e.kind.name() == "arrival").count();
    prop_assert_eq!(arrivals, 1, "{} req {}: every request has exactly one arrival", label, id);
    let completes = events.iter().filter(|e| e.kind.name() == "complete").count();
    prop_assert!(completes <= 1, "{} req {}: at most one completion", label, id);

    let t_first = events.first().map(|e| e.t_s).unwrap_or_default();
    let mut prev: Option<(f64, usize)> = None;
    for event in events {
        let stage = event_kind(event.kind.name());
        let Some(r) = rank(stage) else { continue };
        if stage == Stage::Arrival {
            prop_assert!(
                event.t_s <= t_first + 1e-12,
                "{} req {}: arrival at {}s is not the earliest event",
                label,
                id,
                event.t_s
            );
        }
        if let Some((prev_t, prev_r)) = prev {
            // Ties carry no ordering information (the merge breaks them by
            // stream index); only strictly later events must walk forward.
            if event.t_s > prev_t {
                prop_assert!(
                    r >= prev_r || stage == Stage::Admission,
                    "{} req {}: stage rank {} at {}s after rank {} — pipeline walked backwards",
                    label,
                    id,
                    r,
                    event.t_s,
                    prev_r
                );
            }
        }
        prev = Some((event.t_s, r));
    }
    if completes == 1 {
        let t_complete = events.iter().find(|e| e.kind.name() == "complete").unwrap().t_s;
        let t_max = events.iter().map(|e| e.t_s).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(
            t_complete >= t_max,
            "{} req {}: events continue after completion ({} < {})",
            label,
            id,
            t_complete,
            t_max
        );
    }

    // The migrate stage's pairing property: starts and arrivals match up
    // one-to-one in order, and no transfer lands before it departs.
    let starts: Vec<f64> =
        events.iter().filter(|e| e.kind.name() == "migrate_start").map(|e| e.t_s).collect();
    let arrives: Vec<f64> =
        events.iter().filter(|e| e.kind.name() == "migrate_arrive").map(|e| e.t_s).collect();
    prop_assert_eq!(
        starts.len(),
        arrives.len(),
        "{} req {}: every migrate_start needs a migrate_arrive",
        label,
        id
    );
    for (t_start, t_arrive) in starts.iter().zip(&arrives) {
        prop_assert!(
            t_arrive >= t_start,
            "{} req {}: migration landed at {}s before departing at {}s",
            label,
            id,
            t_arrive,
            t_start
        );
    }
}

proptest! {
    /// The conservation identity holds at every single event boundary, and
    /// each request's trace walks the pipeline stages forward.
    #[test]
    fn stage_queues_conserve_requests_and_traverse_in_order(
        shape in 0usize..4,
        seed in 0u64..1_000_000u64,
    ) {
        let sys = tiny_system();
        let (label, scenario, injected) = golden_shape(shape, seed);
        let mut run = scenario.start(&sys).unwrap();
        loop {
            prop_assert_eq!(
                population(&run), injected,
                "{}: conservation broke after {} completions", &label, run.completed()
            );
            if !run.step_once() {
                break;
            }
        }
        prop_assert_eq!(population(&run), injected, "{}: conservation broke at drain", &label);

        let outcome = run.finish();
        prop_assert!(outcome.report.is_conserved(), "{}", &label);
        let trace = outcome.trace().expect("trace was armed");
        let mut by_request: BTreeMap<usize, Vec<&TraceEvent>> = BTreeMap::new();
        for event in trace.events() {
            if let Some(id) = event.req {
                by_request.entry(id).or_default().push(event);
            }
        }
        prop_assert!(!by_request.is_empty(), "{}: trace captured no request events", &label);
        for (id, events) in &by_request {
            assert_stage_order(&label, *id, events);
        }
    }
}
