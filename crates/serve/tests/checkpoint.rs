//! Checkpoint/resume identity: the golden proof that a [`Snapshot`] is the
//! *complete* simulator state.
//!
//! Each shape runs twice — once straight to the horizon, once to the
//! midpoint, through a snapshot → JSON → parse → resume round trip, then to
//! the horizon — and the two final [`ouro_serve::RunReport`]s must be
//! byte-identical (`PartialEq` plus the rendered `Debug` form, which pins
//! every float bit). The four shapes cover the scenario matrix the repo's
//! goldens pin: colocated/disaggregated × faults × prefix caching, over
//! open- and closed-loop arrival processes.

use ouro_model::zoo;
use ouro_serve::{FaultConfig, RunReport, Scenario, SloConfig, Snapshot};
use ouro_sim::{OuroborosConfig, OuroborosSystem};
use ouro_workload::{ArrivalConfig, LengthConfig, SessionConfig, TimedTrace, TraceGenerator};

fn tiny_system() -> OuroborosSystem {
    OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
}

/// The four golden shapes: `(label, scenario, midpoint instant)`.
fn golden_shapes() -> Vec<(&'static str, Scenario, f64)> {
    let slo = SloConfig { ttft_s: 0.5, tpot_s: 0.05 };
    let mid = |timed: &TimedTrace| timed.last_arrival_s() * 0.5;

    // 1. Colocated, open-loop Poisson, no faults, no prefix sharing.
    let trace = TraceGenerator::new(11).generate(&LengthConfig::fixed(96, 24), 36);
    let timed = ArrivalConfig::Poisson { rate_rps: 300.0 }.assign(&trace, 11);
    let colocated = (
        "colocated-poisson",
        Scenario::colocated(2).prefix_caching(false).slo(slo).workload(timed.clone()),
        mid(&timed),
    );

    // 2. Disaggregated sessions with prefix caching (KV migration + dedup).
    let trace = SessionConfig::chat(4, 0.5).generate(40, 23);
    let timed = ArrivalConfig::Poisson { rate_rps: 400.0 }.assign(&trace, 23);
    let disagg = (
        "disagg-prefix",
        Scenario::disaggregated(1, 2).prefix_caching(true).slo(slo).workload(timed.clone()),
        mid(&timed),
    );

    // 3. Colocated under runtime faults, closed-loop clients (the think
    //    stream and the fault schedule must both survive the checkpoint).
    let trace = TraceGenerator::new(37).generate(&LengthConfig::fixed(128, 16), 30);
    let timed = ArrivalConfig::ClosedLoop { users: 6, think_time_s: 0.02 }.assign(&trace, 37);
    let faulty = (
        "colocated-faults-closed-loop",
        Scenario::colocated(2).faults(FaultConfig::new(0.08, 37)).slo(slo).workload(timed.clone()),
        mid(&timed),
    );

    // 4. Disaggregated with faults, prefix caching and a finite horizon
    //    (arrival cutoff + fault window both derive from the horizon).
    let trace = SessionConfig::chat(3, 0.4).generate(32, 53);
    let timed = ArrivalConfig::Bursty { rate_rps: 350.0, cv: 4.0 }.assign(&trace, 53);
    let horizon = timed.last_arrival_s() * 0.8;
    let all_on = (
        "disagg-faults-prefix-horizon",
        Scenario::disaggregated(1, 1)
            .prefix_caching(true)
            .faults(FaultConfig::new(0.06, 53))
            .horizon(horizon)
            .slo(slo)
            .workload(timed.clone()),
        mid(&timed),
    );

    vec![colocated, disagg, faulty, all_on]
}

/// Runs `scenario` to the end through a midpoint checkpoint serialized to
/// JSON and parsed back, returning the resumed run's report.
fn run_via_snapshot(scenario: &Scenario, sys: &OuroborosSystem, mid_s: f64) -> RunReport {
    let mut run = scenario.start(sys).expect("start");
    run.run_until(mid_s);
    let snapshot = scenario.checkpoint(&run);
    let json = snapshot.to_json();
    let parsed = Snapshot::parse(&json).expect("snapshot JSON must parse back");
    assert_eq!(parsed.to_json(), json, "snapshot JSON must round-trip byte-identically");
    let mut resumed = scenario.resume(sys, &parsed).expect("resume");
    resumed.run_to_end();
    resumed.finish().report
}

#[test]
fn resumed_runs_reproduce_the_uninterrupted_report_byte_for_byte() {
    let sys = tiny_system();
    for (label, scenario, mid_s) in golden_shapes() {
        let straight = scenario.run(&sys).unwrap_or_else(|e| panic!("{label}: {e:?}"));
        assert!(straight.is_conserved(), "{label}: straight run must conserve requests");
        let resumed = run_via_snapshot(&scenario, &sys, mid_s);
        assert_eq!(straight, resumed, "{label}: resumed report diverged");
        assert_eq!(
            format!("{straight:?}"),
            format!("{resumed:?}"),
            "{label}: resumed report Debug form diverged"
        );
    }
}

#[test]
fn checkpoint_is_reusable_at_any_boundary() {
    // Time zero (nothing stepped), an arbitrary early instant, and the
    // drained end state are all valid checkpoints.
    let sys = tiny_system();
    let (label, scenario, mid_s) = golden_shapes().remove(1);
    let straight = scenario.run(&sys).unwrap();

    for at_s in [0.0, mid_s * 0.3] {
        let mut run = scenario.start(&sys).unwrap();
        run.run_until(at_s);
        let snap = scenario.checkpoint(&run);
        let mut resumed = scenario.resume(&sys, &snap).unwrap();
        resumed.run_to_end();
        assert_eq!(straight, resumed.finish().report, "{label}: checkpoint at {at_s}s diverged");
    }

    let mut run = scenario.start(&sys).unwrap();
    run.run_to_end();
    let snap = scenario.checkpoint(&run);
    let resumed = scenario.resume(&sys, &snap).unwrap();
    assert_eq!(straight, resumed.finish().report, "{label}: drained-state checkpoint diverged");
}

#[test]
fn a_checkpoint_does_not_perturb_the_run_it_observes() {
    let sys = tiny_system();
    let (label, scenario, mid_s) = golden_shapes().remove(3);
    let straight = scenario.run(&sys).unwrap();
    let mut run = scenario.start(&sys).unwrap();
    run.run_until(mid_s);
    let _ = scenario.checkpoint(&run).to_json();
    run.run_to_end();
    assert_eq!(straight, run.finish().report, "{label}: checkpointing mutated the live run");
}

#[test]
#[should_panic(expected = "differently-configured scenario")]
fn resuming_under_a_different_config_is_rejected() {
    let sys = tiny_system();
    let (_, scenario, mid_s) = golden_shapes().remove(0);
    let mut run = scenario.start(&sys).unwrap();
    run.run_until(mid_s);
    let snap = scenario.checkpoint(&run);
    let other = golden_shapes().remove(1).1;
    let _ = other.resume(&sys, &snap);
}

#[test]
fn run_full_equals_explicit_start_drive_finish() {
    let sys = tiny_system();
    for (label, scenario, _) in golden_shapes() {
        let via_run_full = scenario.run(&sys).unwrap();
        let mut run = scenario.start(&sys).unwrap();
        run.run_to_end();
        assert_eq!(via_run_full, run.finish().report, "{label}: explicit stepping diverged");
    }
}

/// Every section and its exact key list, in rendered order. Adding,
/// removing, renaming, or reordering any key is a schema change: update
/// this table *and* bump [`ouro_serve::SNAPSHOT_SCHEMA_VERSION`].
const SNAPSHOT_V1_SECTIONS: &[(&str, &[&str])] = &[
    (
        "meta",
        &[
            "section",
            "schema_version",
            "config_hash",
            "completed",
            "faults_fired",
            "router_state",
            "placement_state",
            "think_rng",
            "arrivals",
            "gated",
        ],
    ),
    (
        "migration",
        &[
            "section", "id", "from", "to", "tokens", "deduped", "bytes", "start_s", "arrive_s", "hops",
            "energy_j",
        ],
    ),
    (
        "engine",
        &[
            "section",
            "wafer",
            "clock_s",
            "busy_s",
            "suspended",
            "pending_tokens",
            "pending_wire_tokens",
            "mean_hops",
            "order_counter",
            "stats",
        ],
    ),
    (
        "record",
        &[
            "section",
            "wafer",
            "id",
            "rwafer",
            "prompt",
            "decode",
            "arrival_s",
            "admitted_s",
            "queue_wait_s",
            "first_token_s",
            "completed_s",
            "evictions",
            "cached_prefix",
            "shared",
        ],
    ),
    (
        "pending",
        &[
            "section",
            "wafer",
            "ready_s",
            "rec",
            "decoded",
            "imported",
            "wire_tokens",
            "evicted",
            "prefill_only",
        ],
    ),
    (
        "active",
        &["section", "wafer", "rec", "prefill_remaining", "decoded", "admission_order", "prefill_only"],
    ),
    ("kv", &["section", "wafer", "ring_k", "ring_v", "allocated", "freed", "transfers"]),
    ("kv_cores", &["section", "wafer", "side", "core", "xbs"]),
    ("kv_page", &["section", "wafer", "entries"]),
    ("kv_cursor", &["section", "wafer", "entries"]),
    ("kv_seq_blocks", &["section", "wafer", "entries"]),
    ("kv_resident", &["section", "wafer", "entries"]),
    ("kv_shared", &["section", "wafer", "group", "k_cores", "v_cores", "nodes"]),
    ("kv_seq_shared", &["section", "wafer", "entries"]),
    ("injector", &["section", "events", "counters"]),
    ("injector_wafer", &["section", "wafer", "assignment", "kv_cores", "failed", "death_s", "stall_s"]),
];

/// Splits one rendered snapshot row into its `(key, value)` pairs. The
/// writer guarantees every value is a quote- and backslash-free string, so
/// a plain quote scan is a complete parser.
fn row_pairs(line: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    let mut chars = line.char_indices().peekable();
    let mut quoted: Vec<String> = Vec::new();
    while let Some((start, c)) = chars.next() {
        if c != '"' {
            continue;
        }
        for (end, c) in chars.by_ref() {
            if c == '"' {
                quoted.push(line[start + 1..end].to_string());
                break;
            }
        }
    }
    assert!(quoted.len().is_multiple_of(2), "unpaired quoted string in snapshot row: {line}");
    for kv in quoted.chunks(2) {
        pairs.push((kv[0].clone(), kv[1].clone()));
    }
    pairs
}

#[test]
fn snapshot_v1_key_sets_are_pinned() {
    let sys = tiny_system();
    let expected = |section: &str| -> &[&str] {
        SNAPSHOT_V1_SECTIONS
            .iter()
            .find(|(s, _)| *s == section)
            .unwrap_or_else(|| panic!("snapshot emitted an unpinned section {section:?}"))
            .1
    };
    let mut seen = std::collections::BTreeSet::new();
    for (label, scenario, mid_s) in golden_shapes() {
        // Probe several instants per shape: transient sections (`pending`,
        // `migration`, …) are only non-empty at some points of a run.
        let mut run = scenario.start(&sys).unwrap();
        let mut jsons = Vec::new();
        for frac in [0.2, 0.6, 1.0, 1.4, 2.0] {
            run.run_until(mid_s * frac);
            jsons.push(scenario.checkpoint(&run).to_json());
        }
        for line in jsons.iter().flat_map(|j| j.lines()).filter(|l| l.starts_with('{')) {
            let pairs = row_pairs(line);
            let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
            assert!(!pairs.is_empty() && pairs[0].0 == "section", "{label}: row must lead with section");
            let section = pairs[0].1.clone();
            assert_eq!(keys, expected(&section), "{label}: key set drifted for section {section:?}");
            if section == "meta" {
                let (_, v) = pairs.iter().find(|(k, _)| k == "schema_version").unwrap();
                assert_eq!(v, &ouro_serve::SNAPSHOT_SCHEMA_VERSION.to_string(), "{label}");
            }
            seen.insert(section);
        }
    }
    // Every pinned section must actually occur across the golden shapes —
    // a table entry nothing emits is a stale pin, not coverage.
    for (section, _) in SNAPSHOT_V1_SECTIONS {
        assert!(seen.contains(*section), "section {section:?} never emitted by the golden shapes");
    }
}
