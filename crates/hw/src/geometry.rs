//! Physical geometry of the wafer: die grid, per-die core grid, and the
//! coordinate systems used by the mapping and NoC crates.
//!
//! The default geometry follows §3 of the paper: a 215 mm × 215 mm wafer
//! holding 9 × 7 dies of 23 mm × 30 mm, each die a 13 × 17 grid of CIM cores
//! of 2.97 mm², for 13 923 cores and ≈54 GB of crossbar SRAM per wafer.

/// Identifier of a CIM core: a dense index into the wafer's global core grid,
/// row-major over (global row, global column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Position of a core in the wafer-global core grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreCoord {
    /// Global row (0 at the top of the wafer).
    pub row: usize,
    /// Global column (0 at the left of the wafer).
    pub col: usize,
}

impl CoreCoord {
    /// Manhattan (L1) distance to another core in units of core-to-core hops.
    pub fn manhattan(&self, other: &CoreCoord) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

/// Position of a die in the wafer's die grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DieCoord {
    /// Die row within the wafer (0..die_rows).
    pub row: usize,
    /// Die column within the wafer (0..die_cols).
    pub col: usize,
}

/// Static description of the wafer's physical organisation.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferGeometry {
    /// Number of die rows on the wafer (9 in the paper).
    pub die_rows: usize,
    /// Number of die columns on the wafer (7 in the paper).
    pub die_cols: usize,
    /// Core rows per die (13 in the paper).
    pub core_rows_per_die: usize,
    /// Core columns per die (17 in the paper).
    pub core_cols_per_die: usize,
    /// Area of one CIM core in mm² (2.97 in the paper).
    pub core_area_mm2: f64,
    /// Wafer edge length in mm (215 in the paper).
    pub wafer_edge_mm: f64,
}

impl Default for WaferGeometry {
    fn default() -> Self {
        WaferGeometry {
            die_rows: 9,
            die_cols: 7,
            core_rows_per_die: 13,
            core_cols_per_die: 17,
            core_area_mm2: 2.97,
            wafer_edge_mm: 215.0,
        }
    }
}

impl WaferGeometry {
    /// The paper's single-wafer geometry (9 × 7 dies of 13 × 17 cores).
    pub fn paper() -> WaferGeometry {
        WaferGeometry::default()
    }

    /// A reduced geometry useful for fast tests and exact-solver oracles.
    pub fn tiny(die_rows: usize, die_cols: usize, core_rows: usize, core_cols: usize) -> WaferGeometry {
        WaferGeometry {
            die_rows,
            die_cols,
            core_rows_per_die: core_rows,
            core_cols_per_die: core_cols,
            ..WaferGeometry::default()
        }
    }

    /// Number of dies on the wafer.
    pub fn dies(&self) -> usize {
        self.die_rows * self.die_cols
    }

    /// Number of cores per die.
    pub fn cores_per_die(&self) -> usize {
        self.core_rows_per_die * self.core_cols_per_die
    }

    /// Total number of cores on the wafer.
    pub fn total_cores(&self) -> usize {
        self.dies() * self.cores_per_die()
    }

    /// Total rows of the wafer-global core grid.
    pub fn global_rows(&self) -> usize {
        self.die_rows * self.core_rows_per_die
    }

    /// Total columns of the wafer-global core grid.
    pub fn global_cols(&self) -> usize {
        self.die_cols * self.core_cols_per_die
    }

    /// Converts a core id to its global grid coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this geometry.
    pub fn coord(&self, id: CoreId) -> CoreCoord {
        assert!(id.0 < self.total_cores(), "core id {id} out of range");
        CoreCoord { row: id.0 / self.global_cols(), col: id.0 % self.global_cols() }
    }

    /// Converts a global grid coordinate back to a core id.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid.
    pub fn id(&self, coord: CoreCoord) -> CoreId {
        assert!(
            coord.row < self.global_rows() && coord.col < self.global_cols(),
            "coordinate ({}, {}) outside the {}x{} core grid",
            coord.row,
            coord.col,
            self.global_rows(),
            self.global_cols()
        );
        CoreId(coord.row * self.global_cols() + coord.col)
    }

    /// The die a core belongs to.
    pub fn die_of(&self, id: CoreId) -> DieCoord {
        let c = self.coord(id);
        DieCoord { row: c.row / self.core_rows_per_die, col: c.col / self.core_cols_per_die }
    }

    /// Whether two cores sit on the same die (inter-die hops carry the
    /// `Cost_inter` penalty of the MIQP objective).
    pub fn same_die(&self, a: CoreId, b: CoreId) -> bool {
        self.die_of(a) == self.die_of(b)
    }

    /// Manhattan hop distance between two cores on the global core grid.
    pub fn manhattan(&self, a: CoreId, b: CoreId) -> usize {
        self.coord(a).manhattan(&self.coord(b))
    }

    /// Number of die boundaries crossed by an XY (row-then-column) route
    /// between the two cores.
    pub fn die_crossings(&self, a: CoreId, b: CoreId) -> usize {
        let da = self.die_of(a);
        let db = self.die_of(b);
        da.row.abs_diff(db.row) + da.col.abs_diff(db.col)
    }

    /// Iterator over every core id on the wafer.
    pub fn all_cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.total_cores()).map(CoreId)
    }

    /// Core ids ordered along the S-shaped (boustrophedon) logical route the
    /// paper uses for sequential pipeline dataflow across dies: dies are
    /// visited left-to-right on even die rows and right-to-left on odd die
    /// rows, and within each die cores follow the same serpentine pattern
    /// over core rows.
    pub fn s_order(&self) -> Vec<CoreId> {
        let mut order = Vec::with_capacity(self.total_cores());
        for die_r in 0..self.die_rows {
            let die_cols: Vec<usize> = if die_r % 2 == 0 {
                (0..self.die_cols).collect()
            } else {
                (0..self.die_cols).rev().collect()
            };
            for die_c in die_cols {
                for r in 0..self.core_rows_per_die {
                    let cols: Vec<usize> = if r % 2 == 0 {
                        (0..self.core_cols_per_die).collect()
                    } else {
                        (0..self.core_cols_per_die).rev().collect()
                    };
                    for c in cols {
                        let coord = CoreCoord {
                            row: die_r * self.core_rows_per_die + r,
                            col: die_c * self.core_cols_per_die + c,
                        };
                        order.push(self.id(coord));
                    }
                }
            }
        }
        order
    }

    /// Total crossbar SRAM on the wafer in bytes, given the per-core SRAM
    /// capacity (4 MiB for the paper's core).
    pub fn total_sram_bytes(&self, per_core_bytes: u64) -> u64 {
        self.total_cores() as u64 * per_core_bytes
    }

    /// Total silicon area occupied by CIM cores, in mm².
    pub fn total_core_area_mm2(&self) -> f64 {
        self.total_cores() as f64 * self.core_area_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_geometry_counts() {
        let g = WaferGeometry::paper();
        assert_eq!(g.dies(), 63);
        assert_eq!(g.cores_per_die(), 221);
        assert_eq!(g.total_cores(), 13_923);
    }

    #[test]
    fn paper_wafer_holds_about_54_gb_of_sram() {
        let g = WaferGeometry::paper();
        let four_mib = 4 * 1024 * 1024;
        let gb = g.total_sram_bytes(four_mib) as f64 / 1e9;
        assert!(gb > 53.0 && gb < 60.0, "got {gb} GB");
    }

    #[test]
    fn id_coord_roundtrip() {
        let g = WaferGeometry::paper();
        for id in [0, 1, 118, 119, 6000, 13_922] {
            let id = CoreId(id);
            assert_eq!(g.id(g.coord(id)), id);
        }
    }

    #[test]
    fn die_of_first_and_last_core() {
        let g = WaferGeometry::paper();
        assert_eq!(g.die_of(CoreId(0)), DieCoord { row: 0, col: 0 });
        let last = CoreId(g.total_cores() - 1);
        assert_eq!(g.die_of(last), DieCoord { row: 8, col: 6 });
    }

    #[test]
    fn manhattan_is_symmetric_and_zero_on_self() {
        let g = WaferGeometry::paper();
        let a = CoreId(5);
        let b = CoreId(300);
        assert_eq!(g.manhattan(a, b), g.manhattan(b, a));
        assert_eq!(g.manhattan(a, a), 0);
    }

    #[test]
    fn adjacent_cores_in_same_die_have_no_crossing() {
        let g = WaferGeometry::paper();
        let a = g.id(CoreCoord { row: 0, col: 0 });
        let b = g.id(CoreCoord { row: 0, col: 1 });
        assert_eq!(g.die_crossings(a, b), 0);
        // A core in the next die column over crosses one boundary.
        let c = g.id(CoreCoord { row: 0, col: g.core_cols_per_die });
        assert_eq!(g.die_crossings(a, c), 1);
    }

    #[test]
    fn s_order_visits_every_core_once() {
        let g = WaferGeometry::tiny(2, 2, 3, 3);
        let order = g.s_order();
        assert_eq!(order.len(), g.total_cores());
        let mut seen = vec![false; g.total_cores()];
        for id in &order {
            assert!(!seen[id.0], "core {id} visited twice");
            seen[id.0] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn s_order_consecutive_cores_are_close() {
        // The serpentine order should keep consecutive cores within a small
        // Manhattan distance (the point of the S-shaped route).
        let g = WaferGeometry::tiny(2, 3, 4, 4);
        let order = g.s_order();
        let max_gap = order.windows(2).map(|w| g.manhattan(w[0], w[1])).max().unwrap();
        assert!(
            max_gap <= g.core_rows_per_die + g.core_cols_per_die,
            "serpentine jump of {max_gap} hops is too large"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_panics_on_bad_id() {
        let g = WaferGeometry::tiny(1, 1, 2, 2);
        g.coord(CoreId(4));
    }

    proptest! {
        #[test]
        fn roundtrip_all_ids(die_r in 1usize..4, die_c in 1usize..4,
                             rows in 1usize..5, cols in 1usize..5) {
            let g = WaferGeometry::tiny(die_r, die_c, rows, cols);
            for id in g.all_cores() {
                prop_assert_eq!(g.id(g.coord(id)), id);
                let die = g.die_of(id);
                prop_assert!(die.row < die_r && die.col < die_c);
            }
        }

        #[test]
        fn manhattan_triangle_inequality(a in 0usize..13923, b in 0usize..13923, c in 0usize..13923) {
            let g = WaferGeometry::paper();
            let (a, b, c) = (CoreId(a), CoreId(b), CoreId(c));
            prop_assert!(g.manhattan(a, c) <= g.manhattan(a, b) + g.manhattan(b, c));
        }
    }
}
