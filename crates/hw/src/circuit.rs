//! Circuit-level comparison points (Table 2 and Fig. 21).
//!
//! The paper positions the Ouroboros core against two state-of-the-art
//! digital SRAM CIM macros — the VLSI'22 12-nm macro and the ISSCC'22 5-nm
//! macro — which achieve far higher TOPS/W and TOPS/mm² but sacrifice
//! on-chip capacity, forcing HBM-backed deployments at the system level.
//! This module captures those published operating points (raw and scaled to
//! 7 nm) so the system-level Fig. 21 experiment can swap core
//! implementations inside the Ouroboros system model.

/// One circuit-level CIM design point (a row of Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitPoint {
    /// Display name ("This work", "VLSI'22", "ISSCC'22", "This work + LUT").
    pub name: &'static str,
    /// Process technology in nanometres.
    pub technology_nm: u32,
    /// CIM macro array size in kilobits.
    pub array_size_kb: u32,
    /// Published energy efficiency in TOPS/W (at the native node).
    pub tops_per_watt: f64,
    /// Published compute density in TOPS/mm² (at the native node).
    pub tops_per_mm2: f64,
    /// Energy efficiency scaled to 7 nm (Table 2 footnote / §6.9).
    pub scaled_tops_per_watt: f64,
    /// Compute density scaled to 7 nm.
    pub scaled_tops_per_mm2: f64,
    /// On-wafer SRAM capacity in gigabytes when the design is tiled across a
    /// full Ouroboros-sized wafer.
    pub wafer_capacity_gb: f64,
    /// Whether a system built from this core must spill model weights and KV
    /// cache to off-chip HBM (true for the high-density baselines).
    pub needs_offchip_memory: bool,
    /// Whether the core uses LUT-based compute (the Fig. 21 "+LUT" variant).
    pub lut_compute: bool,
}

impl CircuitPoint {
    /// The Ouroboros core (this work): 7 nm, 1 Mb arrays, capacity-first.
    pub fn ouroboros() -> CircuitPoint {
        CircuitPoint {
            name: "This work",
            technology_nm: 7,
            array_size_kb: 1024,
            tops_per_watt: 10.98,
            tops_per_mm2: 2.03,
            scaled_tops_per_watt: 10.98,
            scaled_tops_per_mm2: 2.03,
            wafer_capacity_gb: 54.0,
            needs_offchip_memory: false,
            lut_compute: false,
        }
    }

    /// The Ouroboros core with LUT-based compute folded in (≈10 % extra
    /// compute-energy saving, Fig. 21).
    pub fn ouroboros_with_lut() -> CircuitPoint {
        CircuitPoint {
            name: "This work + LUT",
            tops_per_watt: 10.98 / 0.9,
            scaled_tops_per_watt: 10.98 / 0.9,
            lut_compute: true,
            ..CircuitPoint::ouroboros()
        }
    }

    /// The VLSI'22 12-nm all-digital macro (121 TOPS/W class, small arrays).
    pub fn vlsi22() -> CircuitPoint {
        CircuitPoint {
            name: "VLSI'22",
            technology_nm: 12,
            array_size_kb: 8,
            tops_per_watt: 30.30,
            tops_per_mm2: 10.40,
            scaled_tops_per_watt: 49.67,
            scaled_tops_per_mm2: 26.0,
            wafer_capacity_gb: 2.63,
            needs_offchip_memory: true,
            lut_compute: false,
        }
    }

    /// The ISSCC'22 5-nm macro (254 TOPS/W class, DVFS, 64 kb arrays).
    pub fn isscc22() -> CircuitPoint {
        CircuitPoint {
            name: "ISSCC'22",
            technology_nm: 5,
            array_size_kb: 64,
            tops_per_watt: 63.0,
            tops_per_mm2: 55.0,
            scaled_tops_per_watt: 44.41,
            scaled_tops_per_mm2: 30.55,
            wafer_capacity_gb: 11.32,
            needs_offchip_memory: true,
            lut_compute: false,
        }
    }

    /// Wafer-level peak compute in TOPS when the design is tiled over
    /// `wafer_area_mm2` of core silicon (using the 7-nm-scaled density).
    pub fn wafer_tops(&self, wafer_area_mm2: f64) -> f64 {
        self.scaled_tops_per_mm2 * wafer_area_mm2
    }

    /// Energy per 8-bit operation in joules (7-nm-scaled).
    pub fn energy_per_op_j(&self) -> f64 {
        1.0 / (self.scaled_tops_per_watt * 1e12)
    }

    /// Whether the whole model + KV working set of `model_bytes` fits in the
    /// design's on-wafer capacity.
    pub fn fits_on_wafer(&self, model_bytes: u64) -> bool {
        (model_bytes as f64) <= self.wafer_capacity_gb * 1e9
    }
}

/// All four design points of Fig. 21 in display order.
pub const CIRCUIT_BASELINES: fn() -> Vec<CircuitPoint> = || {
    vec![
        CircuitPoint::ouroboros(),
        CircuitPoint::vlsi22(),
        CircuitPoint::isscc22(),
        CircuitPoint::ouroboros_with_lut(),
    ]
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_are_reproduced() {
        let ours = CircuitPoint::ouroboros();
        assert_eq!(ours.technology_nm, 7);
        assert_eq!(ours.array_size_kb, 1024);
        assert_eq!(ours.wafer_capacity_gb, 54.0);

        let vlsi = CircuitPoint::vlsi22();
        assert_eq!(vlsi.technology_nm, 12);
        assert_eq!(vlsi.array_size_kb, 8);
        assert!((vlsi.scaled_tops_per_watt - 49.67).abs() < 1e-9);

        let isscc = CircuitPoint::isscc22();
        assert_eq!(isscc.technology_nm, 5);
        assert!((isscc.scaled_tops_per_mm2 - 30.55).abs() < 1e-9);
    }

    #[test]
    fn baselines_have_more_compute_but_less_capacity() {
        let ours = CircuitPoint::ouroboros();
        for b in [CircuitPoint::vlsi22(), CircuitPoint::isscc22()] {
            assert!(b.scaled_tops_per_watt > ours.scaled_tops_per_watt);
            assert!(b.scaled_tops_per_mm2 > ours.scaled_tops_per_mm2);
            assert!(b.wafer_capacity_gb < ours.wafer_capacity_gb);
            assert!(b.needs_offchip_memory);
        }
        assert!(!ours.needs_offchip_memory);
    }

    #[test]
    fn capacity_advantage_is_5_to_20x() {
        let ours = CircuitPoint::ouroboros();
        let r1 = ours.wafer_capacity_gb / CircuitPoint::vlsi22().wafer_capacity_gb;
        let r2 = ours.wafer_capacity_gb / CircuitPoint::isscc22().wafer_capacity_gb;
        assert!(r1 > 5.0 && r1 < 25.0, "got {r1}");
        assert!(r2 > 4.0 && r2 < 6.0, "got {r2}");
    }

    #[test]
    fn lut_variant_is_10_percent_more_efficient() {
        let base = CircuitPoint::ouroboros();
        let lut = CircuitPoint::ouroboros_with_lut();
        let ratio = lut.energy_per_op_j() / base.energy_per_op_j();
        assert!((ratio - 0.9).abs() < 1e-9);
        assert!(lut.lut_compute);
    }

    #[test]
    fn only_ouroboros_fits_a_13b_model() {
        // LLaMA-13B at int8 is ~13 GB of weights before KV.
        let model_bytes = 13_000_000_000u64;
        assert!(CircuitPoint::ouroboros().fits_on_wafer(model_bytes));
        assert!(!CircuitPoint::vlsi22().fits_on_wafer(model_bytes));
        assert!(!CircuitPoint::isscc22().fits_on_wafer(model_bytes));
    }

    #[test]
    fn all_baselines_listed_once() {
        let all = CIRCUIT_BASELINES();
        assert_eq!(all.len(), 4);
        let names: Vec<_> = all.iter().map(|c| c.name).collect();
        assert!(names.contains(&"This work"));
        assert!(names.contains(&"VLSI'22"));
        assert!(names.contains(&"ISSCC'22"));
        assert!(names.contains(&"This work + LUT"));
    }

    #[test]
    fn wafer_tops_scales_with_area() {
        let ours = CircuitPoint::ouroboros();
        assert!((ours.wafer_tops(2000.0) - 2.0 * ours.wafer_tops(1000.0)).abs() < 1e-9);
    }
}
