//! Hardware model of the Ouroboros wafer-scale SRAM CIM system.
//!
//! The crate mirrors the three-level hierarchy of the paper (Fig. 2):
//!
//! * **Wafer** — a 215 mm × 215 mm monolithic wafer-scale chip holding a
//!   9 × 7 grid of dies ([`geometry`]),
//! * **Die** — a 23 mm × 30 mm reticle-limited die with a 13 × 17 grid of
//!   CIM cores,
//! * **CIM core** — a 2.97 mm² core with 32 crossbars (4 MB of SRAM), a
//!   128 KB ping-pong input buffer, a 32 KB output buffer and a 64-way SFU
//!   ([`core`], [`crossbar`]).
//!
//! Every component exposes *costs* (latency, energy, area, capacity) rather
//! than bit-accurate behaviour: the end-to-end simulator composes these costs
//! per pipeline stage. The numbers are seeded from the component
//! characterisation the paper reports in §5 (CACTI array characterisation,
//! ASAP7 synthesis of the adder trees/SFU, Table 2 system-level metrics).
//!
//! The [`yield_model`] module implements the Murphy yield model and seeded
//! defect-map generation used by the fault-tolerance study, and [`circuit`]
//! captures the circuit-level comparison points of Table 2 (VLSI'22,
//! ISSCC'22, and the optional LUT-enhanced Ouroboros core).

pub mod circuit;
pub mod core;
pub mod crossbar;
pub mod energy;
pub mod geometry;
pub mod yield_model;

pub use crate::core::{CimCore, CoreConfig, SfuModel};
pub use circuit::{CircuitPoint, CIRCUIT_BASELINES};
pub use crossbar::{Crossbar, CrossbarConfig, CrossbarMode};
pub use energy::{EnergyTable, CIM_CLOCK_HZ, SFU_CLOCK_HZ};
pub use geometry::{CoreCoord, CoreId, DieCoord, WaferGeometry};
pub use yield_model::{murphy_yield, DefectMap, YieldModel};
