//! Per-component energy and timing constants.
//!
//! The constants are seeded from the component characterisation reported in
//! §5 of the paper (CACTI-characterised SRAM arrays, ASAP7-synthesised adder
//! trees / shift adders / SFU, and the Table 2 system-level TOPS/W figure).
//! They feed every latency/energy computation in the higher-level crates.

/// Clock frequency of the CIM crossbar arrays (§5: 300 MHz).
pub const CIM_CLOCK_HZ: f64 = 300.0e6;

/// Clock frequency of the SFU and control logic (§5: 1 GHz).
pub const SFU_CLOCK_HZ: f64 = 1.0e9;

/// Table of per-operation energies (joules) and static power (watts) for one
/// CIM core and its surrounding memory structures.
///
/// The default values reproduce the paper's component characterisation; the
/// struct is public so experiments (e.g. the LUT-core ablation of Fig. 21)
/// can derive variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyTable {
    /// Energy of one 8-bit multiply-accumulate inside a crossbar, in joules.
    /// Derived from the core-level 10.98 TOPS/W figure (Table 2): one MAC is
    /// two operations.
    pub cim_mac_j: f64,
    /// Energy per byte written into crossbar SRAM (weight load, KV append).
    pub sram_write_j_per_byte: f64,
    /// Energy per byte read from crossbar SRAM through the normal read port
    /// (used only for data that leaves the array, e.g. KV eviction).
    pub sram_read_j_per_byte: f64,
    /// Energy per byte moved through the input/output activation buffers.
    pub buffer_j_per_byte: f64,
    /// Energy of one element-wise or reduction operation on the SFU.
    pub sfu_op_j: f64,
    /// Static (leakage) power of one CIM core, in watts. The CACTI figure is
    /// 0.11 mW per crossbar array; 32 arrays plus peripheral logic.
    pub core_static_w: f64,
}

impl EnergyTable {
    /// The paper's 7-nm Ouroboros core characterisation.
    pub fn paper() -> EnergyTable {
        // 10.98 TOPS/W  =>  energy per (8-bit) op = 1 / 10.98e12 J; a MAC is
        // 2 ops.
        let op_j = 1.0 / 10.98e12;
        EnergyTable {
            cim_mac_j: 2.0 * op_j,
            sram_write_j_per_byte: 1.0e-12,
            sram_read_j_per_byte: 0.8e-12,
            buffer_j_per_byte: 0.5e-12,
            sfu_op_j: 1.0e-12,
            core_static_w: 32.0 * 0.11e-3 + 1.5e-3,
        }
    }

    /// Variant of the table for a core with LUT-based compute (Fig. 21):
    /// the paper reports an additional ~10 % energy saving on the compute
    /// portion.
    pub fn with_lut_compute(self) -> EnergyTable {
        EnergyTable { cim_mac_j: self.cim_mac_j * 0.9, ..self }
    }

    /// Energy of `macs` multiply-accumulates.
    pub fn mac_energy_j(&self, macs: u64) -> f64 {
        macs as f64 * self.cim_mac_j
    }

    /// Energy of writing `bytes` into crossbar SRAM.
    pub fn sram_write_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.sram_write_j_per_byte
    }

    /// Energy of moving `bytes` through an activation buffer (one direction).
    pub fn buffer_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.buffer_j_per_byte
    }

    /// Energy of `ops` SFU operations.
    pub fn sfu_energy_j(&self, ops: u64) -> f64 {
        ops as f64 * self.sfu_op_j
    }

    /// Effective TOPS/W of the compute path implied by this table
    /// (8-bit operations; 1 MAC = 2 ops).
    pub fn tops_per_watt(&self) -> f64 {
        2.0 / self.cim_mac_j / 1e12
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        EnergyTable::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_matches_tops_per_watt() {
        let t = EnergyTable::paper();
        let tpw = t.tops_per_watt();
        assert!((tpw - 10.98).abs() < 0.05, "got {tpw}");
    }

    #[test]
    fn lut_variant_saves_ten_percent_on_compute() {
        let base = EnergyTable::paper();
        let lut = base.with_lut_compute();
        assert!((lut.cim_mac_j / base.cim_mac_j - 0.9).abs() < 1e-12);
        assert_eq!(lut.sfu_op_j, base.sfu_op_j);
    }

    #[test]
    fn energies_scale_linearly() {
        let t = EnergyTable::paper();
        assert!((t.mac_energy_j(2_000) - 2.0 * t.mac_energy_j(1_000)).abs() < 1e-18);
        assert!((t.buffer_energy_j(100) - 100.0 * t.buffer_j_per_byte).abs() < 1e-18);
        assert_eq!(t.sfu_energy_j(0), 0.0);
    }

    #[test]
    fn static_power_is_a_few_milliwatts() {
        let t = EnergyTable::paper();
        assert!(t.core_static_w > 1e-3 && t.core_static_w < 20e-3);
    }

    #[test]
    fn clocks_match_paper() {
        assert_eq!(CIM_CLOCK_HZ, 300.0e6);
        assert_eq!(SFU_CLOCK_HZ, 1.0e9);
    }
}
