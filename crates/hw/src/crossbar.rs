//! The SRAM CIM crossbar (Fig. 10): a 1024 × 1024 6T bitcell array organised
//! as 128 MAC arrays / 32 banks, with bit-serial 8-bit inputs, 32-input adder
//! trees and 32-bit shift-adders.
//!
//! The crossbar is the unit of both storage (128 KiB of weights, or 8 logical
//! KV blocks in attention mode) and compute (one GEMV tile per pass). The
//! row-activation ratio — how many of the 1024 rows fire per cycle — is the
//! central capacity-versus-throughput trade-off of the design (Fig. 11):
//! Ouroboros picks 1/32 to maximise SRAM area utilisation.

use crate::energy::CIM_CLOCK_HZ;

/// Operating mode of a crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CrossbarMode {
    /// Persistent static weights (FFN / projection layers).
    #[default]
    Ffn,
    /// Dynamically allocated KV-cache logical blocks used for in-situ
    /// attention (`Q·Kᵀ` and `softmax(S)·V`).
    Attention,
}

/// Static configuration of a crossbar array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarConfig {
    /// Number of SRAM rows (1024).
    pub rows: usize,
    /// Number of SRAM columns in bits (1024).
    pub cols: usize,
    /// Weight precision in bits (8).
    pub weight_bits: usize,
    /// Input activation precision in bits (8, applied bit-serially).
    pub input_bits: usize,
    /// Number of banks; one row per bank can be active simultaneously (32).
    pub banks: usize,
    /// Fraction of rows active per cycle (1/32 in the paper).
    pub row_activation_ratio: f64,
    /// Clock frequency in hertz (300 MHz).
    pub clock_hz: f64,
    /// Area of the bare SRAM array in mm² (CACTI: 0.063).
    pub array_area_mm2: f64,
    /// Area of the per-crossbar compute periphery (AND gates, adder trees,
    /// shift adders) at the nominal 1/32 activation ratio, in mm².
    pub logic_area_mm2: f64,
    /// Number of logical KV blocks the array splits into in attention mode (8).
    pub logical_blocks: usize,
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        CrossbarConfig {
            rows: 1024,
            cols: 1024,
            weight_bits: 8,
            input_bits: 8,
            banks: 32,
            row_activation_ratio: 1.0 / 32.0,
            clock_hz: CIM_CLOCK_HZ,
            // §5: array 0.063 mm²; AND 0.0023 + adder trees 0.0093 + shift
            // adders 0.0022 ≈ 0.0138 mm² of periphery per crossbar.
            array_area_mm2: 0.063,
            logic_area_mm2: 0.0138,
            logical_blocks: 8,
        }
    }
}

impl CrossbarConfig {
    /// The paper's crossbar (1/32 row activation, 300 MHz).
    pub fn paper() -> CrossbarConfig {
        CrossbarConfig::default()
    }

    /// Same crossbar with a different row-activation ratio. Used by the
    /// Fig. 11 sweep; the compute periphery area scales proportionally to the
    /// number of simultaneously active rows.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not in `(0, 1]`.
    pub fn with_row_activation(ratio: f64) -> CrossbarConfig {
        assert!(ratio > 0.0 && ratio <= 1.0, "row activation ratio must be in (0, 1], got {ratio}");
        let base = CrossbarConfig::default();
        let scale = ratio / base.row_activation_ratio;
        CrossbarConfig { row_activation_ratio: ratio, logic_area_mm2: base.logic_area_mm2 * scale, ..base }
    }

    /// Weight storage capacity of the array in bytes (128 KiB).
    pub fn capacity_bytes(&self) -> u64 {
        (self.rows * self.cols) as u64 / 8
    }

    /// Number of 8-bit weights the array stores (1024 × 128).
    pub fn weight_elements(&self) -> u64 {
        self.capacity_bytes() / (self.weight_bits as u64 / 8)
    }

    /// Output columns produced per pass (128 for 8-bit weights).
    pub fn output_columns(&self) -> usize {
        self.cols / self.weight_bits
    }

    /// Rows active per cycle.
    pub fn active_rows(&self) -> usize {
        ((self.rows as f64) * self.row_activation_ratio).round().max(1.0) as usize
    }

    /// Multiply-accumulates completed per cycle (bit-serial inputs divide the
    /// per-cycle row work by `input_bits`).
    pub fn macs_per_cycle(&self) -> f64 {
        self.active_rows() as f64 * self.output_columns() as f64 / self.input_bits as f64
    }

    /// Peak MAC throughput in MAC/s.
    pub fn macs_per_second(&self) -> f64 {
        self.macs_per_cycle() * self.clock_hz
    }

    /// Peak 8-bit TOPS of one crossbar (1 MAC = 2 ops).
    pub fn tops(&self) -> f64 {
        2.0 * self.macs_per_second() / 1e12
    }

    /// Cycles to run a GEMV tile with `in_dim` inputs against the stored
    /// weights, producing up to [`Self::output_columns`] outputs.
    ///
    /// Inputs beyond `rows` must be split across crossbars by the caller.
    ///
    /// # Panics
    ///
    /// Panics if `in_dim` is zero or exceeds the number of rows.
    pub fn gemv_cycles(&self, in_dim: usize) -> u64 {
        assert!(in_dim > 0 && in_dim <= self.rows, "in_dim {in_dim} must be in 1..={}", self.rows);
        let groups = in_dim.div_ceil(self.active_rows());
        (groups * self.input_bits) as u64
    }

    /// Latency in seconds of a GEMV tile with `in_dim` inputs.
    pub fn gemv_latency_s(&self, in_dim: usize) -> f64 {
        self.gemv_cycles(in_dim) as f64 / self.clock_hz
    }

    /// Total crossbar area (array + compute periphery) in mm².
    pub fn area_mm2(&self) -> f64 {
        self.array_area_mm2 + self.logic_area_mm2
    }

    /// Capacity of one logical KV block in bytes (attention mode).
    pub fn logical_block_bytes(&self) -> u64 {
        self.capacity_bytes() / self.logical_blocks as u64
    }

    /// Number of tokens of K (or V) a logical block can hold for a head of
    /// dimension `head_dim` at `bytes_per_elem` precision.
    pub fn tokens_per_logical_block(&self, head_dim: usize, bytes_per_elem: u64) -> usize {
        (self.logical_block_bytes() / (head_dim as u64 * bytes_per_elem)) as usize
    }
}

/// A crossbar instance: configuration plus its current operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Crossbar {
    /// The static array configuration.
    pub config: CrossbarConfig,
    /// FFN (static weights) or attention (dynamic KV) mode.
    pub mode: CrossbarMode,
}

impl Crossbar {
    /// Creates a crossbar in the given mode with the paper configuration.
    pub fn new(mode: CrossbarMode) -> Crossbar {
        Crossbar { config: CrossbarConfig::paper(), mode }
    }

    /// Whether the crossbar can accept a weight tile (only in FFN mode).
    pub fn accepts_weights(&self) -> bool {
        self.mode == CrossbarMode::Ffn
    }

    /// Whether the crossbar serves dynamically allocated KV blocks.
    pub fn serves_kv(&self) -> bool {
        self.mode == CrossbarMode::Attention
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn capacity_is_128_kib() {
        let c = CrossbarConfig::paper();
        assert_eq!(c.capacity_bytes(), 128 * 1024);
        assert_eq!(c.weight_elements(), 128 * 1024);
    }

    #[test]
    fn output_columns_are_128() {
        assert_eq!(CrossbarConfig::paper().output_columns(), 128);
    }

    #[test]
    fn one_thirty_second_activation_gives_32_active_rows() {
        let c = CrossbarConfig::paper();
        assert_eq!(c.active_rows(), 32);
        assert_eq!(c.macs_per_cycle(), 32.0 * 128.0 / 8.0);
    }

    #[test]
    fn full_array_gemv_uses_all_rows() {
        let c = CrossbarConfig::paper();
        // 1024 rows / 32 active per cycle = 32 groups, each bit-serial over 8
        // input bits.
        assert_eq!(c.gemv_cycles(1024), 32 * 8);
        // Effective MACs per cycle over the full GEMV equals the peak rate.
        let macs = 1024.0 * 128.0;
        let per_cycle = macs / c.gemv_cycles(1024) as f64;
        assert!((per_cycle - c.macs_per_cycle()).abs() < 1e-9);
    }

    #[test]
    fn higher_activation_ratio_increases_throughput_and_logic_area() {
        let slow = CrossbarConfig::with_row_activation(1.0 / 64.0);
        let nominal = CrossbarConfig::paper();
        let fast = CrossbarConfig::with_row_activation(1.0 / 4.0);
        assert!(slow.macs_per_second() < nominal.macs_per_second());
        assert!(nominal.macs_per_second() < fast.macs_per_second());
        assert!(slow.logic_area_mm2 < nominal.logic_area_mm2);
        assert!(nominal.logic_area_mm2 < fast.logic_area_mm2);
    }

    #[test]
    fn logical_blocks_hold_128_tokens_of_a_128_dim_head() {
        let c = CrossbarConfig::paper();
        assert_eq!(c.logical_blocks, 8);
        assert_eq!(c.logical_block_bytes(), 16 * 1024);
        assert_eq!(c.tokens_per_logical_block(128, 1), 128);
        assert_eq!(c.tokens_per_logical_block(64, 1), 256);
    }

    #[test]
    fn modes_gate_weight_and_kv_roles() {
        let ffn = Crossbar::new(CrossbarMode::Ffn);
        let att = Crossbar::new(CrossbarMode::Attention);
        assert!(ffn.accepts_weights() && !ffn.serves_kv());
        assert!(att.serves_kv() && !att.accepts_weights());
    }

    #[test]
    #[should_panic(expected = "row activation ratio")]
    fn zero_activation_ratio_rejected() {
        CrossbarConfig::with_row_activation(0.0);
    }

    #[test]
    #[should_panic(expected = "in_dim")]
    fn oversized_gemv_rejected() {
        CrossbarConfig::paper().gemv_cycles(2048);
    }

    proptest! {
        #[test]
        fn gemv_cycles_monotone_in_in_dim(a in 1usize..1024, b in 1usize..1024) {
            let c = CrossbarConfig::paper();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(c.gemv_cycles(lo) <= c.gemv_cycles(hi));
        }

        #[test]
        fn throughput_scales_with_activation_ratio(denom in 1u32..=128) {
            let ratio = 1.0 / denom as f64;
            let c = CrossbarConfig::with_row_activation(ratio);
            // MACs/cycle should be proportional to active rows.
            let expected = c.active_rows() as f64 * 128.0 / 8.0;
            prop_assert!((c.macs_per_cycle() - expected).abs() < 1e-9);
        }
    }
}
