//! Murphy yield model and seeded defect-map generation (§5, "Yield
//! Modeling").
//!
//! Yield per core follows the Murphy model
//! `Y = ((1 − e^{−A·D0}) / (A·D0))²` with defect density `D0 = 0.09 /cm²`
//! and core area `A = 2.97 mm²`; defective core locations are drawn
//! pseudo-randomly from an explicit seed so that every experiment is
//! reproducible.

use crate::geometry::{CoreId, WaferGeometry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Murphy yield for a die/core of `area_cm2` at defect density
/// `d0_per_cm2` defects per cm².
///
/// Returns a value in `(0, 1]`; areas or densities of zero yield exactly 1.
pub fn murphy_yield(area_cm2: f64, d0_per_cm2: f64) -> f64 {
    let ad = area_cm2 * d0_per_cm2;
    if ad <= 0.0 {
        return 1.0;
    }
    let term = (1.0 - (-ad).exp()) / ad;
    term * term
}

/// Yield model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldModel {
    /// Defect density in defects per cm² (0.09 for the paper's process).
    pub d0_per_cm2: f64,
}

impl Default for YieldModel {
    fn default() -> Self {
        YieldModel { d0_per_cm2: 0.09 }
    }
}

impl YieldModel {
    /// The paper's defect density (TSMC N5-class, 0.09 defects/cm²).
    pub fn paper() -> YieldModel {
        YieldModel::default()
    }

    /// Expected yield of a single core of `core_area_mm2`.
    pub fn core_yield(&self, core_area_mm2: f64) -> f64 {
        murphy_yield(core_area_mm2 / 100.0, self.d0_per_cm2)
    }

    /// Expected number of defective cores on a wafer with the given geometry.
    pub fn expected_defective_cores(&self, geometry: &WaferGeometry) -> f64 {
        (1.0 - self.core_yield(geometry.core_area_mm2)) * geometry.total_cores() as f64
    }
}

/// A per-core defect map for one wafer instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefectMap {
    defective: Vec<bool>,
}

impl DefectMap {
    /// Generates a defect map for `geometry` by sampling each core
    /// independently with the Murphy per-core failure probability, using the
    /// given seed.
    pub fn generate(geometry: &WaferGeometry, model: &YieldModel, seed: u64) -> DefectMap {
        let p_fail = 1.0 - model.core_yield(geometry.core_area_mm2);
        let mut rng = StdRng::seed_from_u64(seed);
        let defective = (0..geometry.total_cores()).map(|_| rng.gen::<f64>() < p_fail).collect();
        DefectMap { defective }
    }

    /// A map with no defects (used by ablations that disable fault modelling).
    pub fn pristine(geometry: &WaferGeometry) -> DefectMap {
        DefectMap { defective: vec![false; geometry.total_cores()] }
    }

    /// A map with an explicit list of defective cores (tests, fault
    /// injection).
    pub fn from_defective(geometry: &WaferGeometry, cores: &[CoreId]) -> DefectMap {
        let mut defective = vec![false; geometry.total_cores()];
        for c in cores {
            defective[c.0] = true;
        }
        DefectMap { defective }
    }

    /// Whether a core is defective.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for the map.
    pub fn is_defective(&self, id: CoreId) -> bool {
        self.defective[id.0]
    }

    /// Number of cores covered by the map.
    pub fn len(&self) -> usize {
        self.defective.len()
    }

    /// Whether the map covers zero cores.
    pub fn is_empty(&self) -> bool {
        self.defective.is_empty()
    }

    /// Number of defective cores.
    pub fn defective_count(&self) -> usize {
        self.defective.iter().filter(|&&d| d).count()
    }

    /// Number of functional cores.
    pub fn functional_count(&self) -> usize {
        self.len() - self.defective_count()
    }

    /// Iterator over the ids of all functional cores.
    pub fn functional_cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.defective.iter().enumerate().filter_map(|(i, &d)| (!d).then_some(CoreId(i)))
    }

    /// Iterator over the ids of all defective cores.
    pub fn defective_cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.defective.iter().enumerate().filter_map(|(i, &d)| d.then_some(CoreId(i)))
    }

    /// Marks an additional core as defective (runtime fault injection).
    pub fn inject_fault(&mut self, id: CoreId) {
        self.defective[id.0] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn murphy_yield_limits() {
        assert_eq!(murphy_yield(0.0, 0.09), 1.0);
        assert!(murphy_yield(1.0, 0.09) < 1.0);
        assert!(murphy_yield(1000.0, 0.09) > 0.0);
    }

    #[test]
    fn murphy_yield_decreases_with_area() {
        let small = murphy_yield(0.03, 0.09);
        let large = murphy_yield(3.0, 0.09);
        assert!(small > large);
    }

    #[test]
    fn paper_core_yield_is_very_high() {
        // A 2.97 mm² core at 0.09/cm² should yield well above 99%.
        let y = YieldModel::paper().core_yield(2.97);
        assert!(y > 0.99 && y < 1.0, "got {y}");
    }

    #[test]
    fn expected_defects_on_paper_wafer_are_tens_of_cores() {
        let g = WaferGeometry::paper();
        let e = YieldModel::paper().expected_defective_cores(&g);
        assert!(e > 5.0 && e < 100.0, "got {e}");
    }

    #[test]
    fn defect_map_is_deterministic_per_seed() {
        let g = WaferGeometry::paper();
        let m = YieldModel::paper();
        let a = DefectMap::generate(&g, &m, 42);
        let b = DefectMap::generate(&g, &m, 42);
        let c = DefectMap::generate(&g, &m, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn defect_count_matches_expectation_roughly() {
        let g = WaferGeometry::paper();
        let m = YieldModel::paper();
        let map = DefectMap::generate(&g, &m, 7);
        let expected = m.expected_defective_cores(&g);
        let got = map.defective_count() as f64;
        assert!(got < expected * 3.0 + 10.0, "far too many defects: {got} vs {expected}");
    }

    #[test]
    fn pristine_map_has_no_defects() {
        let g = WaferGeometry::paper();
        let map = DefectMap::pristine(&g);
        assert_eq!(map.defective_count(), 0);
        assert_eq!(map.functional_count(), g.total_cores());
        assert!(!map.is_empty());
    }

    #[test]
    fn explicit_defects_and_injection() {
        let g = WaferGeometry::tiny(1, 1, 4, 4);
        let mut map = DefectMap::from_defective(&g, &[CoreId(3), CoreId(7)]);
        assert!(map.is_defective(CoreId(3)));
        assert!(!map.is_defective(CoreId(0)));
        assert_eq!(map.defective_count(), 2);
        map.inject_fault(CoreId(0));
        assert_eq!(map.defective_count(), 3);
        assert_eq!(map.functional_cores().count(), 13);
    }

    proptest! {
        #[test]
        fn functional_plus_defective_is_total(seed in 0u64..1000) {
            let g = WaferGeometry::tiny(2, 2, 5, 5);
            let map = DefectMap::generate(&g, &YieldModel::paper(), seed);
            prop_assert_eq!(map.functional_count() + map.defective_count(), g.total_cores());
        }

        #[test]
        fn yield_is_within_unit_interval(area in 0.0f64..100.0, d0 in 0.0f64..10.0) {
            let y = murphy_yield(area, d0);
            prop_assert!(y > 0.0 && y <= 1.0);
        }
    }
}
