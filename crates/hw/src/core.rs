//! The CIM core (Fig. 2c): 32 crossbars behind a 1024-bit H-tree, a 128 KB
//! ping-pong input buffer, a 32 KB output buffer, a 64-way SFU and the
//! control unit.
//!
//! The core is the unit of mapping (one weight tile per core in the MIQP) and
//! of fault tolerance (defects are modelled at core granularity). Its methods
//! answer the two questions the end-to-end simulator asks: *how long* does a
//! piece of work take on one core, and *how much energy* does it burn.

use crate::crossbar::CrossbarConfig;
use crate::energy::{EnergyTable, SFU_CLOCK_HZ};

/// Model of the special-function unit: 64-way parallel element-wise and
/// reduction lanes with a 10 KB operand buffer, clocked at 1 GHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SfuModel {
    /// Number of parallel lanes (64).
    pub lanes: usize,
    /// Clock frequency in hertz (1 GHz).
    pub clock_hz: f64,
    /// Operand buffer capacity in bytes (10 KB).
    pub buffer_bytes: u64,
}

impl Default for SfuModel {
    fn default() -> Self {
        SfuModel { lanes: 64, clock_hz: SFU_CLOCK_HZ, buffer_bytes: 10 * 1024 }
    }
}

impl SfuModel {
    /// Latency in seconds to execute `ops` element-wise/reduction operations.
    pub fn latency_s(&self, ops: u64) -> f64 {
        (ops as f64 / self.lanes as f64).ceil() / self.clock_hz
    }

    /// Peak operation throughput in ops/s.
    pub fn ops_per_second(&self) -> f64 {
        self.lanes as f64 * self.clock_hz
    }
}

/// Static configuration of a CIM core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Number of crossbars per core (32).
    pub crossbars: usize,
    /// Crossbar configuration shared by all crossbars in the core.
    pub crossbar: CrossbarConfig,
    /// Input activation buffer capacity in bytes (128 KB, ping-pong).
    pub input_buffer_bytes: u64,
    /// Output activation buffer capacity in bytes (32 KB).
    pub output_buffer_bytes: u64,
    /// SFU model.
    pub sfu: SfuModel,
    /// Per-operation energy table.
    pub energy: EnergyTable,
    /// Fixed area of the non-crossbar logic (buffers, SFU, control, H-tree)
    /// in mm².
    pub periphery_area_mm2: f64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            crossbars: 32,
            crossbar: CrossbarConfig::paper(),
            input_buffer_bytes: 128 * 1024,
            output_buffer_bytes: 32 * 1024,
            sfu: SfuModel::default(),
            energy: EnergyTable::paper(),
            // 2.97 mm² total minus 32 × (0.063 + 0.0138) mm² of crossbars.
            periphery_area_mm2: 2.97 - 32.0 * (0.063 + 0.0138),
        }
    }
}

impl CoreConfig {
    /// The paper's core configuration.
    pub fn paper() -> CoreConfig {
        CoreConfig::default()
    }

    /// A core built around a non-default crossbar (e.g. a different
    /// row-activation ratio for the Fig. 11 sweep). The number of crossbars
    /// is re-derived so the core stays within the same silicon budget, which
    /// is how a higher activation ratio costs SRAM capacity.
    pub fn with_crossbar(crossbar: CrossbarConfig) -> CoreConfig {
        let nominal = CoreConfig::default();
        let budget = nominal.crossbars as f64 * nominal.crossbar.area_mm2();
        let fit = (budget / crossbar.area_mm2()).floor().max(1.0) as usize;
        CoreConfig { crossbars: fit, crossbar, ..nominal }
    }
}

/// A CIM core: the compute/storage unit the mapper assigns weight tiles and
/// KV blocks to.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CimCore {
    /// The core's configuration.
    pub config: CoreConfig,
}

impl CimCore {
    /// Creates a core with the paper configuration.
    pub fn paper() -> CimCore {
        CimCore { config: CoreConfig::paper() }
    }

    /// Creates a core from an explicit configuration.
    pub fn new(config: CoreConfig) -> CimCore {
        CimCore { config }
    }

    /// Total crossbar SRAM capacity of the core in bytes (4 MiB nominally).
    pub fn sram_capacity_bytes(&self) -> u64 {
        self.config.crossbars as u64 * self.config.crossbar.capacity_bytes()
    }

    /// Capacity available for static weights when `kv_crossbars` of the
    /// core's crossbars are reserved for dynamic KV blocks.
    pub fn weight_capacity_bytes(&self, kv_crossbars: usize) -> u64 {
        let weight_xbars = self.config.crossbars.saturating_sub(kv_crossbars);
        weight_xbars as u64 * self.config.crossbar.capacity_bytes()
    }

    /// Peak MAC throughput of the whole core (all crossbars busy), MAC/s.
    pub fn peak_macs_per_second(&self) -> f64 {
        self.config.crossbars as f64 * self.config.crossbar.macs_per_second()
    }

    /// Peak 8-bit TOPS of the core.
    pub fn tops(&self) -> f64 {
        2.0 * self.peak_macs_per_second() / 1e12
    }

    /// Core area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.config.crossbars as f64 * self.config.crossbar.area_mm2() + self.config.periphery_area_mm2
    }

    /// Compute density in TOPS/mm².
    pub fn tops_per_mm2(&self) -> f64 {
        self.tops() / self.area_mm2()
    }

    /// Latency in seconds for this core to perform an `in_dim × out_dim`
    /// GEMV against weights resident in its crossbars.
    ///
    /// The GEMV is tiled into crossbar-sized tiles (`rows × output_columns`);
    /// tiles execute in parallel across the core's crossbars, in waves when
    /// there are more tiles than crossbars.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn gemv_latency_s(&self, in_dim: usize, out_dim: usize) -> f64 {
        assert!(in_dim > 0 && out_dim > 0, "GEMV dimensions must be positive");
        let xb = &self.config.crossbar;
        let row_tiles = in_dim.div_ceil(xb.rows);
        let col_tiles = out_dim.div_ceil(xb.output_columns());
        let tiles = row_tiles * col_tiles;
        let waves = tiles.div_ceil(self.config.crossbars);
        let last_tile_rows = in_dim - (row_tiles - 1) * xb.rows;
        // All waves except possibly the last run full-height tiles.
        let full = xb.gemv_latency_s(xb.rows.min(in_dim));
        let partial = xb.gemv_latency_s(last_tile_rows);
        if waves == 1 && row_tiles == 1 {
            partial
        } else {
            (waves - 1) as f64 * full + full.max(partial)
        }
    }

    /// Energy in joules for an `in_dim × out_dim` GEMV on this core,
    /// including input/output buffer traffic.
    pub fn gemv_energy_j(&self, in_dim: usize, out_dim: usize) -> f64 {
        let macs = in_dim as u64 * out_dim as u64;
        let e = &self.config.energy;
        e.mac_energy_j(macs) + e.buffer_energy_j(in_dim as u64) + e.buffer_energy_j(out_dim as u64 * 4)
        // 32-bit partial sums out
    }

    /// Latency of `ops` SFU operations.
    pub fn sfu_latency_s(&self, ops: u64) -> f64 {
        self.config.sfu.latency_s(ops)
    }

    /// Energy of `ops` SFU operations.
    pub fn sfu_energy_j(&self, ops: u64) -> f64 {
        self.config.energy.sfu_energy_j(ops)
    }

    /// Energy of appending `bytes` of KV data into crossbar SRAM.
    pub fn kv_write_energy_j(&self, bytes: u64) -> f64 {
        self.config.energy.sram_write_energy_j(bytes)
    }

    /// Static energy burned by the core over `seconds`.
    pub fn static_energy_j(&self, seconds: f64) -> f64 {
        self.config.energy.core_static_w * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn core_has_4_mib_of_crossbar_sram() {
        let core = CimCore::paper();
        assert_eq!(core.sram_capacity_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    fn core_area_close_to_paper() {
        let core = CimCore::paper();
        let area = core.area_mm2();
        assert!((area - 2.97).abs() < 0.01, "got {area}");
    }

    #[test]
    fn compute_density_in_paper_ballpark() {
        // Table 2 reports 2.03 TOPS/mm²; the analytical model should land in
        // the same regime (within ~2×), since it derives throughput from the
        // microarchitecture rather than quoting the table.
        let core = CimCore::paper();
        let d = core.tops_per_mm2();
        assert!(d > 1.0 && d < 4.5, "got {d}");
    }

    #[test]
    fn weight_capacity_shrinks_with_kv_reservation() {
        let core = CimCore::paper();
        assert_eq!(core.weight_capacity_bytes(0), core.sram_capacity_bytes());
        assert_eq!(core.weight_capacity_bytes(8), 24 * core.config.crossbar.capacity_bytes());
        assert_eq!(core.weight_capacity_bytes(64), 0);
    }

    #[test]
    fn gemv_latency_increases_with_size() {
        let core = CimCore::paper();
        let small = core.gemv_latency_s(512, 128);
        let large = core.gemv_latency_s(4096, 4096);
        assert!(large > small);
    }

    #[test]
    fn single_tile_gemv_matches_crossbar_latency() {
        let core = CimCore::paper();
        let xb = core.config.crossbar;
        assert!((core.gemv_latency_s(1024, 128) - xb.gemv_latency_s(1024)).abs() < 1e-15);
    }

    #[test]
    fn sfu_latency_uses_64_lanes() {
        let core = CimCore::paper();
        let one_wave = core.sfu_latency_s(64);
        let two_waves = core.sfu_latency_s(65);
        assert!((one_wave - 1.0 / SFU_CLOCK_HZ).abs() < 1e-15);
        assert!((two_waves - 2.0 / SFU_CLOCK_HZ).abs() < 1e-15);
    }

    #[test]
    fn reduced_sram_when_activation_ratio_rises() {
        let fast = CoreConfig::with_crossbar(CrossbarConfig::with_row_activation(1.0 / 4.0));
        let nominal = CoreConfig::paper();
        assert!(
            fast.crossbars < nominal.crossbars,
            "a 1/4 activation core should fit fewer crossbars ({} vs {})",
            fast.crossbars,
            nominal.crossbars
        );
        let fast_core = CimCore::new(fast);
        let nominal_core = CimCore::new(nominal);
        assert!(fast_core.sram_capacity_bytes() < nominal_core.sram_capacity_bytes());
        assert!(fast_core.peak_macs_per_second() > nominal_core.peak_macs_per_second());
    }

    #[test]
    fn static_energy_scales_with_time() {
        let core = CimCore::paper();
        assert!((core.static_energy_j(2.0) - 2.0 * core.static_energy_j(1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_gemv_rejected() {
        CimCore::paper().gemv_latency_s(0, 128);
    }

    proptest! {
        #[test]
        fn gemv_latency_bounded_by_peak_throughput(
            in_dim in 1usize..8192, out_dim in 1usize..8192
        ) {
            let core = CimCore::paper();
            let macs = (in_dim * out_dim) as f64;
            let t = core.gemv_latency_s(in_dim, out_dim);
            // Can never be faster than the peak MAC rate allows.
            prop_assert!(t >= macs / core.peak_macs_per_second() * 0.999);
        }

        #[test]
        fn gemv_energy_monotone(in_dim in 1usize..4096, out_dim in 1usize..4096) {
            let core = CimCore::paper();
            let e1 = core.gemv_energy_j(in_dim, out_dim);
            let e2 = core.gemv_energy_j(in_dim + 1, out_dim + 1);
            prop_assert!(e2 > e1);
        }
    }
}
