//! Laws and schema pins for the analysis layer: latency attribution,
//! utilization, and the results-store regression gate.
//!
//! The central law is **telescoping attribution**: the analyzer
//! decomposes each request's E2E latency into exclusive phases, so the
//! per-request phase sums must equal E2E within float tolerance — on the
//! pinned golden scenario and (property-tested) on every one of the four
//! golden scenario shapes. The analysis is also strictly post-hoc: an
//! analyzed run's `RunReport` must be bit-identical to the dark run's.
//!
//! The store side pins the gate semantics the CI workflow relies on: a
//! synthetically injected >10% throughput regression must fail
//! `compare_rows`, and the `analyze`/`compare` JSON schemas are pinned
//! as key-set goldens alongside `BENCH_REPORT_V1_KEYS`.

use std::sync::OnceLock;

use ouro_bench::store::{compare_rows, config_hash, parse_flat_rows, JsonValue};
use ouroboros::model::zoo;
use ouroboros::serve::{routers, FaultConfig, RunOutcome, Scenario, SloConfig};
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::trace::{
    Analysis, ANALYZE_PHASE_KEYS, ANALYZE_SCHEMA_VERSION, ANALYZE_SUMMARY_KEYS, ANALYZE_WAFER_KEYS,
    PHASE_COUNT, PHASE_NAMES,
};
use ouroboros::workload::{ArrivalConfig, LengthConfig, TimedTrace, TraceGenerator};
use proptest::prelude::*;

fn tiny_system() -> &'static OuroborosSystem {
    static SYS: OnceLock<OuroborosSystem> = OnceLock::new();
    SYS.get_or_init(|| OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap())
}

fn slo() -> SloConfig {
    SloConfig { ttft_s: 0.5, tpot_s: 0.05 }
}

fn timed(n: usize, rate: f64, seed: u64) -> TimedTrace {
    let trace = TraceGenerator::new(seed).generate(&LengthConfig::fixed(64, 32), n);
    ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, seed)
}

/// The pinned golden scenario — the same shape `trace_golden.rs` pins
/// its digest with and `experiments analyze` runs.
fn golden_outcome() -> RunOutcome {
    Scenario::disaggregated(2, 2)
        .slo(slo())
        .faults(FaultConfig::new(0.02, 8))
        .workload(timed(50, 400.0, 8))
        .trace(true)
        .telemetry_every(0.005)
        .run_full(tiny_system())
        .unwrap()
}

/// Asserts the telescoping law on every request of an analysis: phases
/// are exclusive and exhaustive, so they sum to E2E (and the clipped
/// phases to TTFT) within float-addition tolerance.
fn assert_phases_telescope(analysis: &Analysis) {
    for r in &analysis.requests {
        for (name, v) in PHASE_NAMES.iter().zip(&r.phases) {
            assert!(*v >= -1e-12, "req {}: negative {name} phase {v}", r.req);
        }
        if let Some(e2e) = r.e2e_s() {
            let sum = r.phase_sum_s();
            assert!(
                (sum - e2e).abs() <= 1e-9 * e2e.abs().max(1.0),
                "req {}: phase sum {sum} != e2e {e2e}",
                r.req
            );
        }
        if let Some(ttft) = r.ttft_s() {
            let sum = r.ttft_phase_sum_s();
            assert!(
                (sum - ttft).abs() <= 1e-9 * ttft.abs().max(1.0),
                "req {}: clipped phase sum {sum} != ttft {ttft}",
                r.req
            );
        }
    }
}

#[test]
fn golden_scenario_phases_sum_to_e2e() {
    let outcome = golden_outcome();
    let analysis = outcome.analysis().unwrap();
    let s = &outcome.report.serving;
    assert_eq!(analysis.requests.len(), s.injected, "every injected request is reconstructed");
    assert_eq!(analysis.completed().count(), s.completed);
    assert_eq!(analysis.dropped(), s.dropped);
    assert_phases_telescope(&analysis);
    // The golden shape migrates and faults, so the interesting phases
    // are all live.
    let stats = analysis.phase_stats();
    let idx = |name: &str| PHASE_NAMES.iter().position(|n| *n == name).unwrap();
    assert!(stats[idx("kv_transit")].total_s > 0.0, "disaggregation ships KV");
    assert!(stats[idx("decode_compute")].total_s > 0.0);
    assert!(stats[idx("fault_stall")].total_s > 0.0, "the accelerated MTBF must cost time");
}

#[test]
fn analysis_is_strictly_post_hoc() {
    let dark = Scenario::disaggregated(2, 2)
        .slo(slo())
        .faults(FaultConfig::new(0.02, 8))
        .workload(timed(50, 400.0, 8))
        .run(tiny_system())
        .unwrap();
    let lit = golden_outcome();
    let _ = lit.analysis().unwrap().report();
    assert_eq!(
        dark.json_object().render(),
        lit.report.json_object().render(),
        "analysis must never perturb the report"
    );
}

#[test]
fn attribution_table_names_every_phase() {
    let text = golden_outcome().analysis().unwrap().report();
    for name in PHASE_NAMES {
        assert!(text.contains(name), "report must name phase {name}");
    }
    assert!(text.contains("where the latency goes"));
    assert!(text.contains("wafer utilization"));
}

proptest! {
    /// Satellite law: the decomposition telescopes on every one of the
    /// four golden scenario shapes, across seeds and load levels — the
    /// same sampling ranges the trace well-formedness law uses.
    #[test]
    fn sampled_runs_decompose_exhaustively(
        seed in 0u64..1_000,
        rate in 150.0f64..900.0,
        n in 8usize..28,
        shape in 0u8..4,
    ) {
        let workload = timed(n, rate, seed);
        let scenario = match shape {
            0 => Scenario::colocated(2).router(routers::least_kv_load()),
            1 => Scenario::colocated(2).faults(FaultConfig::new(0.02, seed)),
            2 => Scenario::disaggregated(1, 1),
            _ => Scenario::disaggregated(2, 2).faults(FaultConfig::new(0.03, seed)),
        };
        let outcome = scenario.slo(slo()).workload(workload).trace(true).run_full(tiny_system()).unwrap();
        let analysis = outcome.analysis().unwrap();
        let s = &outcome.report.serving;
        prop_assert_eq!(analysis.requests.len(), s.injected);
        prop_assert_eq!(analysis.completed().count(), s.completed);
        prop_assert_eq!(analysis.dropped(), s.dropped);
        assert_phases_telescope(&analysis);
        // Busy fractions are fractions on every sampled run.
        for w in &analysis.wafers {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&w.busy_fraction));
        }
    }
}

// ---- telemetry joins the utilization rows --------------------------------

#[test]
fn utilization_rows_cover_every_wafer_and_read_telemetry() {
    let outcome = golden_outcome();
    let analysis = outcome.analysis().unwrap();
    assert_eq!(analysis.wafers.len(), 4, "2 prefill + 2 decode wafers");
    let samples_per_wafer = outcome.telemetry().iter().filter(|s| s.wafer == 0).count();
    for w in &analysis.wafers {
        assert_eq!(w.samples, samples_per_wafer, "telemetry joins by wafer");
    }
    // Decode wafers (2, 3) do the stepping in a disaggregated run.
    let steps: u64 = analysis.wafers.iter().filter(|w| w.wafer >= 2).map(|w| w.steps).sum();
    assert!(steps > 0);
}

// ---- schema pins (alongside BENCH_REPORT_V1_KEYS) ------------------------

#[test]
fn analyze_rows_match_their_pinned_schema() {
    assert_eq!(ANALYZE_SCHEMA_VERSION, 1, "bump deliberately, with the key-set goldens");
    let analysis = golden_outcome().analysis().unwrap();
    let rows = analysis.json_rows();
    assert_eq!(rows.len(), 1 + PHASE_COUNT + analysis.wafers.len());
    assert_eq!(rows[0].keys(), ANALYZE_SUMMARY_KEYS);
    for row in &rows[1..=PHASE_COUNT] {
        assert_eq!(row.keys(), ANALYZE_PHASE_KEYS);
    }
    for row in &rows[1 + PHASE_COUNT..] {
        assert_eq!(row.keys(), ANALYZE_WAFER_KEYS);
    }
    for row in &rows {
        assert!(row.render().starts_with(&format!("{{\"schema_version\": {ANALYZE_SCHEMA_VERSION}")));
    }
    // The flat rows round-trip through the store's parser — the analyze
    // export is store-compatible by construction.
    let parsed = parse_flat_rows(&ouro_bench::json::render_array(&rows)).unwrap();
    assert_eq!(parsed.len(), rows.len());
    assert_eq!(parsed[0]["row"], JsonValue::Str("summary".into()));
}

#[test]
fn compare_rows_match_their_pinned_schema() {
    assert_eq!(ouro_bench::COMPARE_SCHEMA_VERSION, 1);
    let rows = vec![ouro_bench::bench_report_row("colocated", 40, 40, 0.01, 0.002, &Default::default())];
    let flat = parse_flat_rows(&ouro_bench::json::render_array(&rows)).unwrap();
    let verdict = compare_rows(&flat, &flat, 0.10);
    assert!(verdict.passed(false), "a run diffed against itself passes");
    for row in verdict.json_rows() {
        assert_eq!(row.keys(), ouro_bench::COMPARE_V1_KEYS);
    }
}

// ---- the regression gate (acceptance criterion) --------------------------

/// A synthetically injected >10% throughput regression must fail the
/// gate, while determinism metrics staying put keeps it a regression
/// (not a drift failure) — the exact contract `experiments regress`
/// gives CI.
#[test]
fn synthetic_throughput_regression_fails_the_gate() {
    let profile = Default::default();
    let baseline = vec![
        ouro_bench::bench_report_row("colocated", 100, 97, 0.25, 0.020, &profile),
        ouro_bench::bench_report_row("disagg", 100, 95, 0.31, 0.025, &profile),
    ];
    let baseline = parse_flat_rows(&ouro_bench::json::render_array(&baseline)).unwrap();
    assert_eq!(config_hash(&baseline), config_hash(&baseline.iter().rev().cloned().collect::<Vec<_>>()));

    // The same configuration measured 20% slower (wall 0.020 -> 0.025 s).
    let slower = vec![
        ouro_bench::bench_report_row("colocated", 100, 97, 0.25, 0.025, &profile),
        ouro_bench::bench_report_row("disagg", 100, 95, 0.31, 0.025, &profile),
    ];
    let slower = parse_flat_rows(&ouro_bench::json::render_array(&slower)).unwrap();
    assert_eq!(config_hash(&slower), config_hash(&baseline), "measurements never move the address");

    let verdict = compare_rows(&slower, &baseline, 0.10);
    assert!(verdict.regressions() > 0, "a 20% slowdown crosses the 10% threshold");
    assert!(verdict.failures.is_empty(), "simulated metrics did not move, so no drift failures");
    assert!(!verdict.passed(false), "regress gates");
    assert!(verdict.passed(true), "warn-only waives throughput");

    // Schema drift gates even warn-only: rename a measurement key.
    let mut drifted = slower.clone();
    let v = drifted[0].remove("requests_per_s").unwrap();
    drifted[0].insert("requests_per_sec".into(), v);
    let verdict = compare_rows(&drifted, &baseline, 0.10);
    assert!(!verdict.passed(true), "schema drift hard-fails");
}
