//! Integration tests across the substrate crates (hardware, NoC, mapping,
//! KV cache) without going through the end-to-end simulator.

use ouroboros::hw::{CoreId, DefectMap, WaferGeometry, YieldModel};
use ouroboros::kvcache::{KvManagerConfig, KvScheduler};
use ouroboros::mapping::{remap_with_chain, MappingProblem, Strategy};
use ouroboros::model::zoo;
use ouroboros::noc::{CommCost, Transfer};
use ouroboros::workload::{LengthConfig, TraceGenerator};

#[test]
fn mapping_respects_a_realistic_defect_map() {
    let geometry = WaferGeometry::paper();
    let defects = DefectMap::generate(&geometry, &YieldModel::paper(), 99);
    let candidates: Vec<CoreId> = defects.functional_cores().collect();
    let problem = MappingProblem::for_block(
        &zoo::llama_13b(),
        geometry,
        defects.clone(),
        candidates,
        4 * 1024 * 1024,
        4.0,
    );
    let solution = ouroboros::mapping::solve(&problem, Strategy::Anneal { iterations: 1_000 }, 3);
    assert!(problem.is_feasible(&solution.assignment));
    for core in &solution.assignment.core {
        assert!(!defects.is_defective(*core));
    }
}

#[test]
fn optimized_mapping_reduces_transmission_volume_on_the_real_wafer() {
    let geometry = WaferGeometry::paper();
    let defects = DefectMap::pristine(&geometry);
    let candidates: Vec<CoreId> = geometry.all_cores().collect();
    let problem =
        MappingProblem::for_block(&zoo::llama_13b(), geometry, defects, candidates, 4 * 1024 * 1024, 4.0);
    let ours = ouroboros::mapping::solve(&problem, Strategy::Anneal { iterations: 2_000 }, 1);
    let summa = ouroboros::mapping::solve(&problem, Strategy::Summa, 1);
    let waferllm = ouroboros::mapping::solve(&problem, Strategy::WaferLlm, 1);
    assert!(ours.summary.transmission_volume() < summa.summary.transmission_volume());
    assert!(ours.summary.transmission_volume() <= waferllm.summary.transmission_volume() + 1e-9);
}

#[test]
fn replacement_chain_repairs_a_mapped_block() {
    let geometry = WaferGeometry::paper();
    let defects = DefectMap::pristine(&geometry);
    let candidates: Vec<CoreId> = geometry.all_cores().collect();
    let problem = MappingProblem::for_block(
        &zoo::baichuan_13b(),
        geometry.clone(),
        defects,
        candidates,
        4 * 1024 * 1024,
        4.0,
    );
    let solution = ouroboros::mapping::solve(&problem, Strategy::Greedy, 0);
    let kv_cores: Vec<CoreId> =
        geometry.all_cores().filter(|c| !solution.assignment.core.contains(c)).take(32).collect();
    let failed = solution.assignment.core[0];
    let outcome = remap_with_chain(&geometry, &solution.assignment, &kv_cores, failed).unwrap();
    assert!(!outcome.new_assignment.core.contains(&failed));
    // Still a permutation (one tile per core).
    let unique: std::collections::HashSet<_> = outcome.new_assignment.core.iter().collect();
    assert_eq!(unique.len(), outcome.new_assignment.core.len());
}

#[test]
fn kv_scheduler_completes_a_wikitext_trace_with_bounded_waste() {
    let trace = TraceGenerator::new(21).generate(&LengthConfig::wikitext2_like(), 40);
    let mut cfg = KvManagerConfig::new((0..8).map(CoreId).collect(), 2, 128);
    cfg.threshold = 0.1;
    let mut sched = KvScheduler::new(cfg).unwrap();
    let out = sched.run_trace(&trace);
    assert_eq!(out.stats.completed as usize, trace.len());
    assert!(out.waste_fraction < 0.5, "waste {} should stay bounded", out.waste_fraction);
}

#[test]
fn communication_cost_scales_with_mapping_distance() {
    let geometry = WaferGeometry::paper();
    let comm = CommCost::paper();
    let near = Transfer::between(&geometry, CoreId(0), CoreId(1), 4096);
    let far = Transfer::between(&geometry, CoreId(0), CoreId(13_000), 4096);
    assert!(comm.energy_j(&far) > 10.0 * comm.energy_j(&near));
    assert!(comm.latency_s(&far) > comm.latency_s(&near));
}
