//! Report-compatibility goldens for the unified `Scenario` API.
//!
//! The `Scenario` driver replaced four bespoke run loops
//! (`Cluster::run{,_with_faults}`, `DisaggCluster::run{,_with_faults}`)
//! with one shared discrete-event loop. These tests pin, per seed, the
//! exact metric values the *pre-migration* entry points produced on
//! identical traffic — full `Debug` fingerprints captured from the old
//! code immediately before it was deleted — and assert the unified
//! [`ouroboros::serve::RunReport`] reproduces them bit for bit. Every
//! simulated quantity is a pure function of the seeds, so any divergence
//! here means the shared loop changed event ordering or accounting, not
//! just formatting.
//!
//! The second half covers the JSON side of the schema: a flat round-trip
//! through the one `RunReport` schema and a pinned key list that fails
//! loudly when a key is renamed or dropped without bumping
//! `SCHEMA_VERSION`.

use ouroboros::model::zoo;
use ouroboros::serve::{
    placements, routers, FaultConfig, MigrationStats, RunReport, Scenario, SloConfig, SCHEMA_VERSION,
};
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::workload::{ArrivalConfig, LengthConfig, SessionConfig, TimedTrace, TraceGenerator};

fn tiny_system() -> OuroborosSystem {
    OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
}

fn slo() -> SloConfig {
    SloConfig { ttft_s: 0.5, tpot_s: 0.05 }
}

fn timed(n: usize, rate: f64, seed: u64) -> TimedTrace {
    let trace = TraceGenerator::new(seed).generate(&LengthConfig::fixed(64, 32), n);
    ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, seed)
}

/// The migration fingerprint format the pre-migration `DisaggReport`
/// fields were captured in.
fn migration_fingerprint(m: &MigrationStats) -> String {
    format!(
        "{:?}",
        (
            m.migrations,
            m.migrated_tokens,
            m.exported_kv_bytes,
            m.imported_kv_bytes,
            m.in_flight_kv_bytes,
            m.dropped_kv_bytes,
            m.deduped_kv_bytes,
            m.mean_migration_s,
            m.max_migration_s,
            m.link_energy_j,
            m.prefill_utilization,
            m.decode_utilization,
        )
    )
}

// ---- fingerprints captured from the pre-migration entry points ----------

const GOLDEN_A_COLOCATED: &str = "ServingReport { offered_rps: Some(200.0), injected: 60, completed: 60, queued_at_horizon: 0, in_flight_at_horizon: 0, dropped: 0, evictions: 0, prefilled_tokens: 3840, cached_prefix_tokens: 0, duration_s: 0.2670201593644123, achieved_rps: 224.70213538490094, output_tokens_per_s: 7190.46833231683, goodput_rps: 224.70213538490094, slo_attainment: 1.0, ttft: LatencyStats { count: 60, mean_s: 0.000190252091410495, p50_s: 0.00018465600000000526, p95_s: 0.0002369655988260222, p99_s: 0.000254806430110624, max_s: 0.000254806430110624 }, tpot: LatencyStats { count: 60, mean_s: 9.303496290322608e-5, p50_s: 9.303535483870976e-5, p95_s: 9.304270967742004e-5, p99_s: 9.304735483870949e-5, max_s: 9.304735483870949e-5 }, e2e: LatencyStats { count: 60, mean_s: 0.0030743359414105056, p50_s: 0.003068752000000008, p95_s: 0.0031212895988260436, p99_s: 0.0031392039301106067, max_s: 0.0031392039301106067 }, utilization: 0.324932621029525 }";

const GOLDEN_B_CLOSED_LOOP: &str = "ServingReport { offered_rps: None, injected: 30, completed: 30, queued_at_horizon: 0, in_flight_at_horizon: 0, dropped: 0, evictions: 0, prefilled_tokens: 960, cached_prefix_tokens: 0, duration_s: 0.06194954164272701, achieved_rps: 484.2650842037676, output_tokens_per_s: 7748.241347260281, goodput_rps: 484.2650842037676, slo_attainment: 1.0, ttft: LatencyStats { count: 30, mean_s: 0.00018386786335544437, p50_s: 0.0001831840000000029, p95_s: 0.00019124067833738503, p99_s: 0.00019564322232589913, max_s: 0.00019564322232589913 }, tpot: LatencyStats { count: 30, mean_s: 9.225677111111137e-5, p50_s: 9.225840000000017e-5, p95_s: 9.22584000000004e-5, p99_s: 9.226560000000031e-5, max_s: 9.226560000000031e-5 }, e2e: LatencyStats { count: 30, mean_s: 0.0015677194300221142, p50_s: 0.0015670600000000055, p95_s: 0.0015752246783373898, p99_s: 0.0015795192223258992, max_s: 0.0015795192223258992 }, utilization: 0.3347959839576148 }";

const GOLDEN_C_FAULTY_SERVING: &str = "ServingReport { offered_rps: Some(400.0), injected: 60, completed: 60, queued_at_horizon: 0, in_flight_at_horizon: 0, dropped: 0, evictions: 7, prefilled_tokens: 4434, cached_prefix_tokens: 0, duration_s: 0.12252384937079104, achieved_rps: 489.7005791780457, output_tokens_per_s: 15670.418533697462, goodput_rps: 489.7005791780457, slo_attainment: 1.0, ttft: LatencyStats { count: 60, mean_s: 0.00020564002765349252, p50_s: 0.0001852320000000074, p95_s: 0.00026205706711554533, p99_s: 0.00044579555618425026, max_s: 0.00044579555618425026 }, tpot: LatencyStats { count: 60, mean_s: 9.57745877240143e-5, p50_s: 9.303825806451625e-5, p95_s: 0.00011330675806451558, p99_s: 0.00012859185483870948, max_s: 0.00012859185483870948 }, e2e: LatencyStats { count: 60, mean_s: 0.0031746522470979355, p50_s: 0.0030782559999999876, p95_s: 0.0037040367009472386, p99_s: 0.004260769987748894, max_s: 0.004260769987748894 }, utilization: 0.563638323787406 }";

const GOLDEN_C_FAULTS: &str = "FaultReport { config: FaultConfig { mtbf_s: 0.02, remap_stall_s: 0.0005, seed: 5 }, wafers: 2, faults_injected: 10, chains_built: 10, tiles_moved: 10, chain_cores: 20, kv_cores_lost: 10, sequences_recomputed: 7, kv_tokens_evicted: 594, kv_bytes_evicted: 29196288, unrepaired_faults: 0, dead_wafers: 0, total_stall_s: 0.005, dead_time_s: 0.0, duration_s: 0.12252384937079104, availability: 0.9795958092009147 }";

const GOLDEN_D_DISAGG_SERVING: &str = "ServingReport { offered_rps: Some(400.0), injected: 60, completed: 60, queued_at_horizon: 0, in_flight_at_horizon: 0, dropped: 0, evictions: 0, prefilled_tokens: 3840, cached_prefix_tokens: 0, duration_s: 0.13512106445022862, achieved_rps: 444.04623545650645, output_tokens_per_s: 14209.479534608206, goodput_rps: 444.04623545650645, slo_attainment: 1.0, ttft: LatencyStats { count: 60, mean_s: 0.00023474093712672853, p50_s: 0.00021871328000000467, p95_s: 0.000297776469855085, p99_s: 0.00030697576882512956, max_s: 0.00030697576882512956 }, tpot: LatencyStats { count: 60, mean_s: 9.303477903225809e-5, p50_s: 9.303535483870954e-5, p95_s: 9.304754838709671e-5, p99_s: 9.30476451612911e-5, max_s: 9.30476451612911e-5 }, e2e: LatencyStats { count: 60, mean_s: 0.0031188190871267295, p50_s: 0.0031026092800000293, p95_s: 0.003182049469855064, p99_s: 0.0031914077688251358, max_s: 0.0031914077688251358 }, utilization: 0.27717462967289874 }";

const GOLDEN_D_MIGRATION: &str = "(60, 3840, 188743680, 188743680, 0, 0, 0, 3.395394666666507e-5, 3.4057279999999846e-5, 0.037497077760000025, 0.020498950413614166, 0.5338503089321833)";

const GOLDEN_E_PREFIX_DISAGG_SERVING: &str = "ServingReport { offered_rps: Some(2000.0), injected: 20, completed: 20, queued_at_horizon: 0, in_flight_at_horizon: 0, dropped: 0, evictions: 0, prefilled_tokens: 3726, cached_prefix_tokens: 6400, duration_s: 0.010044185151127686, achieved_rps: 1991.2018445572512, output_tokens_per_s: 33949.991449701134, goodput_rps: 1991.2018445572512, slo_attainment: 1.0, ttft: LatencyStats { count: 20, mean_s: 0.0005267280533068656, p50_s: 0.0005554381203395379, p95_s: 0.0006440470799999999, p99_s: 0.0006659405599999998, max_s: 0.0006659405599999998 }, tpot: LatencyStats { count: 20, mean_s: 9.818692995552055e-5, p50_s: 9.824408333333332e-5, p95_s: 9.826902173913044e-5, p99_s: 9.827206250000002e-5, max_s: 9.827206250000002e-5 }, e2e: LatencyStats { count: 20, mean_s: 0.0021025648783068672, p50_s: 0.0022630192649258475, p95_s: 0.0027650875438585513, p99_s: 0.00290423458, max_s: 0.00290423458 }, utilization: 0.683627830101189 }";

const GOLDEN_E_MIGRATION: &str = "(20, 1422, 283803648, 69894144, 0, 0, 213909504, 3.724707199999996e-5, 0.00015162208000000003, 0.007856455679999999, 0.4482001209918528, 0.801341684655857)";

const GOLDEN_F_FAULTY_DISAGG_SERVING: &str = "ServingReport { offered_rps: Some(400.0), injected: 50, completed: 50, queued_at_horizon: 0, in_flight_at_horizon: 0, dropped: 0, evictions: 3, prefilled_tokens: 3445, cached_prefix_tokens: 0, duration_s: 0.12353980641700299, achieved_rps: 404.72784805269384, output_tokens_per_s: 12951.291137686203, goodput_rps: 404.72784805269384, slo_attainment: 1.0, ttft: LatencyStats { count: 50, mean_s: 0.0002587294791010413, p50_s: 0.00021928927999999986, p95_s: 0.00036983915816061336, p99_s: 0.0007091233426666545, max_s: 0.0007091233426666545 }, tpot: LatencyStats { count: 50, mean_s: 9.419196838709657e-5, p50_s: 9.303535483870931e-5, p95_s: 9.30512258064514e-5, p99_s: 0.00013160301612903164, max_s: 0.00013160301612903164 }, e2e: LatencyStats { count: 50, mean_s: 0.003178680499101037, p50_s: 0.0031031852800000037, p95_s: 0.003593711342666648, p99_s: 0.004298782779999982, max_s: 0.004298782779999982 }, utilization: 0.239988643012148 }";

const GOLDEN_F_MIGRATION: &str = "(50, 3200, 157286400, 157286400, 0, 0, 0, 3.392927999999868e-5, 3.4057279999999846e-5, 0.029695672320000005, 0.018749130884838507, 0.46122815513945753)";

const GOLDEN_F_FAULTS: &str = "FaultReport { config: FaultConfig { mtbf_s: 0.02, remap_stall_s: 0.0005, seed: 8 }, wafers: 4, faults_injected: 20, chains_built: 19, tiles_moved: 23, chain_cores: 42, kv_cores_lost: 19, sequences_recomputed: 3, kv_tokens_evicted: 245, kv_bytes_evicted: 12042240, unrepaired_faults: 1, dead_wafers: 1, total_stall_s: 0.0095, dead_time_s: 0.01220158825531703, duration_s: 0.12353980641700299, availability: 0.9560838144304996 }";

const GOLDEN_G_PREFIX_COLOCATED: &str = "ServingReport { offered_rps: Some(1500.0), injected: 60, completed: 60, queued_at_horizon: 0, in_flight_at_horizon: 0, dropped: 0, evictions: 0, prefilled_tokens: 11421, cached_prefix_tokens: 6912, duration_s: 0.03347510288778823, achieved_rps: 1792.3768659091438, output_tokens_per_s: 28349.427429129624, goodput_rps: 1792.3768659091438, slo_attainment: 1.0, ttft: LatencyStats { count: 60, mean_s: 0.0004460214680838595, p50_s: 0.00047482612414513994, p95_s: 0.0007074747437293485, p99_s: 0.0007976208763258788, max_s: 0.0007976208763258788 }, tpot: LatencyStats { count: 60, mean_s: 0.00010125279826380578, p50_s: 9.936999999999998e-5, p95_s: 0.00010831193055555605, p99_s: 0.00012003908333333354, max_s: 0.00012003908333333354 }, e2e: LatencyStats { count: 60, mean_s: 0.0019464597291949702, p50_s: 0.0019561433246463467, p95_s: 0.00277000778313026, p99_s: 0.002985776938765794, max_s: 0.002985776938765794 }, utilization: 0.8274242554587532 }";

#[test]
fn colocated_open_loop_reproduces_the_old_cluster_run() {
    let sys = tiny_system();
    let report = Scenario::colocated(2)
        .router(routers::least_kv_load())
        .slo(slo())
        .workload(timed(60, 200.0, 3))
        .run(&sys)
        .unwrap();
    assert_eq!(format!("{:?}", report.serving), GOLDEN_A_COLOCATED);
    assert!(report.migration.is_none() && report.faults.is_none());
}

#[test]
fn closed_loop_reproduces_the_old_cluster_run() {
    let sys = tiny_system();
    let trace = TraceGenerator::new(9).generate(&LengthConfig::fixed(32, 16), 30);
    let t = ArrivalConfig::ClosedLoop { users: 4, think_time_s: 0.01 }.assign(&trace, 9);
    let report = Scenario::colocated(2)
        .router(routers::join_shortest_queue())
        .slo(slo())
        .workload(t)
        .run(&sys)
        .unwrap();
    assert_eq!(format!("{:?}", report.serving), GOLDEN_B_CLOSED_LOOP);
}

#[test]
fn colocated_faults_reproduce_the_old_run_with_faults() {
    let sys = tiny_system();
    let report = Scenario::colocated(2)
        .router(routers::least_kv_load())
        .slo(slo())
        .faults(FaultConfig::new(0.02, 5))
        .workload(timed(60, 400.0, 5))
        .run(&sys)
        .unwrap();
    assert_eq!(format!("{:?}", report.serving), GOLDEN_C_FAULTY_SERVING);
    assert_eq!(format!("{:?}", report.faults.unwrap()), GOLDEN_C_FAULTS);
}

#[test]
fn disaggregated_run_reproduces_the_old_disagg_cluster() {
    let sys = tiny_system();
    let report = Scenario::disaggregated(2, 2).slo(slo()).workload(timed(60, 400.0, 3)).run(&sys).unwrap();
    assert_eq!(format!("{:?}", report.serving), GOLDEN_D_DISAGG_SERVING);
    assert_eq!(migration_fingerprint(&report.migration.unwrap()), GOLDEN_D_MIGRATION);
}

#[test]
fn prefix_affine_disagg_reproduces_the_old_dedup_accounting() {
    let sys = tiny_system();
    let cfg = SessionConfig {
        groups: 1,
        shared_prefix_tokens: 256,
        share_ratio: 1.0,
        max_turns: 1,
        user_turn_tokens: 32,
        decode_tokens: 16,
    };
    let trace = cfg.generate(20, 31);
    let t = ArrivalConfig::Poisson { rate_rps: 2_000.0 }.assign(&trace, 31);
    let report = Scenario::disaggregated(1, 2)
        .placement(placements::prefix_affinity())
        .slo(slo())
        .workload(t)
        .run(&sys)
        .unwrap();
    assert_eq!(format!("{:?}", report.serving), GOLDEN_E_PREFIX_DISAGG_SERVING);
    assert_eq!(migration_fingerprint(&report.migration.unwrap()), GOLDEN_E_MIGRATION);
}

#[test]
fn disaggregated_faults_reproduce_the_old_run_with_faults() {
    let sys = tiny_system();
    let report = Scenario::disaggregated(2, 2)
        .slo(slo())
        .faults(FaultConfig::new(0.02, 8))
        .workload(timed(50, 400.0, 8))
        .run(&sys)
        .unwrap();
    assert_eq!(format!("{:?}", report.serving), GOLDEN_F_FAULTY_DISAGG_SERVING);
    assert_eq!(migration_fingerprint(&report.migration.unwrap()), GOLDEN_F_MIGRATION);
    assert_eq!(format!("{:?}", report.faults.unwrap()), GOLDEN_F_FAULTS);
}

#[test]
fn prefix_affinity_routing_reproduces_the_old_cluster_run() {
    let sys = tiny_system();
    let cfg = SessionConfig {
        groups: 2,
        shared_prefix_tokens: 256,
        share_ratio: 0.7,
        max_turns: 2,
        user_turn_tokens: 32,
        decode_tokens: 16,
    };
    let trace = cfg.generate(60, 42);
    let t = ArrivalConfig::Poisson { rate_rps: 1_500.0 }.assign(&trace, 42);
    let report =
        Scenario::colocated(2).router(routers::prefix_affinity()).slo(slo()).workload(t).run(&sys).unwrap();
    assert_eq!(format!("{:?}", report.serving), GOLDEN_G_PREFIX_COLOCATED);
}

// ---- JSON schema stability -----------------------------------------------

/// A deliberately tiny flat-JSON parser: enough to round-trip the one
/// `RunReport` row shape (flat object, string/number/null values).
fn parse_flat_json(s: &str) -> Vec<(String, String)> {
    let body = s.trim().strip_prefix('{').and_then(|s| s.strip_suffix('}')).expect("a flat object");
    let mut fields = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
        if rest.is_empty() {
            break;
        }
        let rest2 = rest.strip_prefix('"').expect("keys are quoted");
        let close = rest2.find('"').expect("key closes");
        let key = &rest2[..close];
        let after = rest2[close + 1..].trim_start().strip_prefix(':').expect("colon").trim_start();
        let (value, remaining) = if let Some(sr) = after.strip_prefix('"') {
            let end = sr.find('"').expect("string value closes (goldens contain no escapes)");
            (format!("\"{}\"", &sr[..end]), &sr[end + 1..])
        } else {
            let end = after.find(',').unwrap_or(after.len());
            (after[..end].trim().to_string(), &after[end..])
        };
        fields.push((key.to_string(), value));
        rest = remaining.trim_start();
    }
    fields
}

fn sample_reports() -> (RunReport, RunReport) {
    let sys = tiny_system();
    let colocated_clean = Scenario::colocated(2)
        .router(routers::least_kv_load())
        .slo(slo())
        .workload(timed(20, 200.0, 3))
        .run(&sys)
        .unwrap();
    let disagg_faulty = Scenario::disaggregated(1, 1)
        .slo(slo())
        .faults(FaultConfig::new(0.05, 8))
        .workload(timed(20, 200.0, 8))
        .run(&sys)
        .unwrap();
    (colocated_clean, disagg_faulty)
}

/// The flat row renders every metric it claims, and the values survive a
/// parse round-trip exactly (numbers are emitted with shortest round-trip
/// precision).
#[test]
fn run_report_json_round_trips() {
    let (colocated, disagg) = sample_reports();
    for report in [&colocated, &disagg] {
        let obj = report.json_object();
        let parsed = parse_flat_json(&obj.render());
        assert_eq!(
            parsed.len(),
            obj.keys().len(),
            "every field parses back: {} vs {}",
            parsed.len(),
            obj.keys().len()
        );
        let lookup = |key: &str| -> &str {
            &parsed.iter().find(|(k, _)| k == key).unwrap_or_else(|| panic!("key {key} missing")).1
        };
        assert_eq!(lookup("schema_version"), format!("{SCHEMA_VERSION}"));
        assert_eq!(lookup("deployment"), format!("\"{}\"", report.deployment.kind));
        assert_eq!(lookup("injected").parse::<usize>().unwrap(), report.serving.injected);
        assert_eq!(lookup("completed").parse::<usize>().unwrap(), report.serving.completed);
        assert_eq!(lookup("duration_s").parse::<f64>().unwrap(), report.serving.duration_s);
        assert_eq!(lookup("ttft_p99_s").parse::<f64>().unwrap(), report.serving.ttft.p99_s);
        assert_eq!(lookup("goodput_rps").parse::<f64>().unwrap(), report.serving.goodput_rps);
        match &report.migration {
            Some(m) => {
                assert_eq!(lookup("exported_kv_bytes").parse::<u64>().unwrap(), m.exported_kv_bytes)
            }
            None => assert_eq!(lookup("exported_kv_bytes"), "null"),
        }
        match &report.faults {
            Some(f) => assert_eq!(lookup("availability").parse::<f64>().unwrap(), f.availability),
            None => assert_eq!(lookup("availability"), "null"),
        }
    }
}

/// The pinned schema: the exact key list of a `RunReport` row, identical
/// for every scenario shape. Renaming, dropping, or reordering a key must
/// fail this test — that is the cue to bump `SCHEMA_VERSION` and update
/// the trajectory tooling.
#[test]
fn run_report_json_schema_is_pinned() {
    const SCHEMA_V1_KEYS: &[&str] = &[
        "schema_version",
        "deployment",
        "wafers",
        "prefill_wafers",
        "decode_wafers",
        "router",
        "placement",
        "offered_rps",
        "injected",
        "completed",
        "queued_at_horizon",
        "in_flight_at_horizon",
        "dropped",
        "evictions",
        "prefilled_tokens",
        "cached_prefix_tokens",
        "duration_s",
        "achieved_rps",
        "output_tokens_per_s",
        "goodput_rps",
        "slo_attainment",
        "utilization",
        "ttft_mean_s",
        "ttft_p50_s",
        "ttft_p95_s",
        "ttft_p99_s",
        "ttft_max_s",
        "tpot_mean_s",
        "tpot_p50_s",
        "tpot_p95_s",
        "tpot_p99_s",
        "tpot_max_s",
        "e2e_mean_s",
        "e2e_p50_s",
        "e2e_p95_s",
        "e2e_p99_s",
        "e2e_max_s",
        "migrations",
        "migrated_tokens",
        "exported_kv_bytes",
        "imported_kv_bytes",
        "in_flight_kv_bytes",
        "dropped_kv_bytes",
        "deduped_kv_bytes",
        "mean_migration_s",
        "max_migration_s",
        "link_energy_j",
        "prefill_utilization",
        "decode_utilization",
        "fault_mtbf_s",
        "faults_injected",
        "chains_built",
        "tiles_moved",
        "kv_cores_lost",
        "sequences_recomputed",
        "kv_tokens_evicted",
        "kv_bytes_evicted",
        "unrepaired_faults",
        "dead_wafers",
        "total_stall_s",
        "dead_time_s",
        "mean_chain_len",
        "availability",
    ];
    assert_eq!(SCHEMA_VERSION, 1, "bump the pinned key list with the schema version");
    let (colocated, disagg) = sample_reports();
    assert_eq!(colocated.json_object().keys(), SCHEMA_V1_KEYS);
    assert_eq!(disagg.json_object().keys(), SCHEMA_V1_KEYS, "one schema regardless of scenario shape");
}

/// Every row the `experiments` binary can emit — a `labeled_row` plus the
/// per-subcommand extras — stays inside the pinned key universe: the tag
/// keys, the `RunReport` schema, and the declared extras. A subcommand
/// growing an ad-hoc key fails here until it is pinned deliberately.
#[test]
fn experiment_rows_stay_inside_the_pinned_schema() {
    let (colocated, disagg) = sample_reports();
    let report_obj = colocated.json_object();
    let pinned: Vec<&str> = ouro_bench::EXPERIMENT_TAG_KEYS
        .iter()
        .copied()
        .chain(report_obj.keys())
        .chain(ouro_bench::EXPERIMENT_EXTRA_KEYS.iter().copied())
        .collect();
    // The row shapes the subcommands build: plain, faults (inflation
    // ratios), and prefix (share ratio).
    let rows = [
        ouro_bench::labeled_row("serving", "poisson-sweep", &colocated),
        ouro_bench::labeled_row("faults", "mtbf-span/2", &disagg)
            .num("ttft_p99_inflation", 1.25)
            .num("tpot_p99_inflation", 1.5),
        ouro_bench::labeled_row("prefix", "share-0.50-on", &colocated).num("share_ratio", 0.5),
    ];
    for row in &rows {
        for key in row.keys() {
            assert!(pinned.contains(&key), "key {key:?} is not in the pinned experiment-row schema");
        }
        assert!(row.render().contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
    }
    // The tag keys come first, so trajectory tooling can group by
    // experiment/label without parsing the whole row.
    assert_eq!(&rows[0].keys()[..2], ouro_bench::EXPERIMENT_TAG_KEYS);
}

/// The bench-report row (`BENCH_serve.json`) is schema-versioned and its
/// key list is pinned in `ouro_bench::BENCH_REPORT_V1_KEYS`.
#[test]
fn bench_report_rows_match_their_pinned_schema() {
    let row = ouro_bench::bench_report_row("colocated", 40, 40, 0.01, 0.002, &Default::default());
    assert_eq!(row.keys(), ouro_bench::BENCH_REPORT_V1_KEYS);
    assert!(row
        .render()
        .starts_with(&format!("{{\"schema_version\": {}", ouroboros::serve::BENCH_SCHEMA_VERSION)));
}
