//! The `examples/fault_tolerance.rs` walkthrough promoted into tier-1
//! assertions: defect-map generation, mapping around defects, replacement-
//! chain repair, and rerouting — the example only *prints* these steps in
//! CI, so regressions in any of them were previously invisible to
//! `cargo test`.

use ouroboros::hw::{CoreId, DefectMap, WaferGeometry, YieldModel};
use ouroboros::mapping::{remap_with_chain, MappingProblem, Strategy};
use ouroboros::model::zoo;
use ouroboros::noc::route_xy_avoiding;

/// One shared setup mirroring the example, at a reduced annealing budget:
/// the paper wafer, the Murphy defect map at seed 2026, and a LLaMA-13B
/// block mapped around the defects.
fn mapped_block() -> (WaferGeometry, DefectMap, ouroboros::mapping::MappingSolution, MappingProblem) {
    let geometry = WaferGeometry::paper();
    let defects = DefectMap::generate(&geometry, &YieldModel::paper(), 2026);
    let model = zoo::llama_13b();
    let candidates: Vec<CoreId> = defects.functional_cores().collect();
    let problem = MappingProblem::for_block(
        &model,
        geometry.clone(),
        defects.clone(),
        candidates,
        4 * 1024 * 1024,
        4.0,
    );
    let solution = ouroboros::mapping::solve(&problem, Strategy::Anneal { iterations: 500 }, 7);
    (geometry, defects, solution, problem)
}

#[test]
fn defect_map_density_matches_the_murphy_model() {
    let geometry = WaferGeometry::paper();
    let defects = DefectMap::generate(&geometry, &YieldModel::paper(), 2026);
    assert!(defects.defective_count() > 0, "a paper wafer at 0.09/cm² has defects");
    let expected = YieldModel::paper().expected_defective_cores(&geometry);
    let got = defects.defective_count() as f64;
    assert!(
        got < 3.0 * expected + 10.0 && got > expected / 3.0 - 10.0,
        "defect count {got} should be near the Murphy expectation {expected:.1}"
    );
    // Mapping never places tiles on defective cores.
    let (_, defects, solution, _) = mapped_block();
    for core in &solution.assignment.core {
        assert!(!defects.is_defective(*core), "{core} is defective but holds weights");
    }
}

#[test]
fn replacement_chain_repairs_a_runtime_failure_on_the_paper_wafer() {
    let (geometry, defects, solution, problem) = mapped_block();
    assert!(problem.num_tiles() > 0);
    let kv_cores: Vec<CoreId> =
        defects.functional_cores().filter(|c| !solution.assignment.core.contains(c)).take(64).collect();
    assert!(kv_cores.len() >= 8, "the example's 64 spare KV cores must exist");
    let failed = solution.assignment.core[problem.num_tiles() / 2];
    let outcome = remap_with_chain(&geometry, &solution.assignment, &kv_cores, failed)
        .expect("kv cores are available to absorb the displaced weights");
    // The example's printed claims, asserted.
    assert!(!outcome.new_assignment.core.contains(&failed), "the failed core is vacated");
    assert!(outcome.chain.len() >= 2, "a weight-core failure builds a real chain");
    assert_eq!(outcome.moved_tiles, outcome.chain.len() - 1);
    let evicted = outcome.evicted_kv_core.expect("a weight-core failure must absorb a KV core");
    assert!(kv_cores.contains(&evicted));
    assert!(outcome.new_assignment.core.contains(&evicted), "the KV core now holds weights");
    let unique: std::collections::HashSet<_> = outcome.new_assignment.core.iter().collect();
    assert_eq!(unique.len(), outcome.new_assignment.core.len(), "no tile stacking after repair");
}

#[test]
fn routing_steers_around_the_injected_fault() {
    let (geometry, defects, solution, problem) = mapped_block();
    let kv_cores: Vec<CoreId> =
        defects.functional_cores().filter(|c| !solution.assignment.core.contains(c)).take(64).collect();
    let failed = solution.assignment.core[problem.num_tiles() / 2];
    let outcome = remap_with_chain(&geometry, &solution.assignment, &kv_cores, failed).unwrap();

    let mut with_fault = defects.clone();
    with_fault.inject_fault(failed);
    let from = *outcome.chain.last().unwrap();
    let start = geometry.coord(outcome.chain[0]);
    let target = geometry.id(ouroboros::hw::CoreCoord {
        row: (start.row + 5).min(geometry.global_rows() - 1),
        col: (start.col + 5).min(geometry.global_cols() - 1),
    });
    let path = route_xy_avoiding(&geometry, &with_fault, from, target)
        .expect("the mesh must route around a single dead core");
    assert!(path.len() >= 2, "a real route has at least source and destination");
    assert_eq!(*path.first().unwrap(), from);
    assert_eq!(*path.last().unwrap(), target);
    for hop in &path {
        assert!(!with_fault.is_defective(*hop), "{hop} on the route is defective");
    }
}
