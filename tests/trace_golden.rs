//! Goldens and well-formedness laws for the observability layer.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Tracing is observational.** The same scenario runs dark and fully
//!    instrumented; the `RunReport`s must be bit-identical. (The seed
//!    goldens in `scenario_golden.rs` separately prove dark runs did not
//!    move versus the pre-tracing code.)
//! 2. **The trace itself is deterministic.** A seed-pinned run must
//!    reproduce the exact event count and FNV-1a digest captured when the
//!    layer landed; two identical runs must agree event for event.
//! 3. **Span timelines are well formed** — on every sampled workload, not
//!    just the pinned one: one arrival per request, terminal events
//!    terminate, prefill starts match ends (up to evictions), and every
//!    reconstructed span nests inside its request's lifetime.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use ouroboros::model::zoo;
use ouroboros::serve::{routers, FaultConfig, RunOutcome, Scenario, SloConfig};
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::trace::{EventKind, Trace, TraceEvent, TELEMETRY_SCHEMA_VERSION, TRACE_SCHEMA_VERSION};
use ouroboros::workload::{ArrivalConfig, LengthConfig, TimedTrace, TraceGenerator};
use proptest::prelude::*;

fn tiny_system() -> &'static OuroborosSystem {
    static SYS: OnceLock<OuroborosSystem> = OnceLock::new();
    SYS.get_or_init(|| OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap())
}

fn slo() -> SloConfig {
    SloConfig { ttft_s: 0.5, tpot_s: 0.05 }
}

fn timed(n: usize, rate: f64, seed: u64) -> TimedTrace {
    let trace = TraceGenerator::new(seed).generate(&LengthConfig::fixed(64, 32), n);
    ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, seed)
}

/// The pinned scenario: disaggregated pools with runtime faults — the
/// richest event mix (arrivals, migrations, imports, faults, evictions).
fn pinned_scenario() -> Scenario {
    Scenario::disaggregated(2, 2).slo(slo()).faults(FaultConfig::new(0.02, 8)).workload(timed(50, 400.0, 8))
}

fn instrumented(scenario: Scenario) -> RunOutcome {
    scenario.trace(true).telemetry_every(0.005).profile(true).run_full(tiny_system()).unwrap()
}

// ---- the golden trace ----------------------------------------------------

/// Event count and FNV-1a digest of the pinned run, captured when the
/// trace layer landed. Any drift means event emission, ordering, or the
/// JSON rendering changed — bump `TRACE_SCHEMA_VERSION` if that was
/// deliberate.
const GOLDEN_EVENTS: usize = 1_876;
const GOLDEN_DIGEST: u64 = 0x1fc9_b968_7961_8e59;

#[test]
fn pinned_run_reproduces_the_golden_trace() {
    let outcome = instrumented(pinned_scenario());
    let trace = outcome.trace().unwrap();
    assert_eq!(TRACE_SCHEMA_VERSION, 1, "recapture the golden digest with the schema version");
    assert_eq!(trace.len(), GOLDEN_EVENTS, "event count drifted (digest {:#018x})", trace.digest());
    assert_eq!(trace.digest(), GOLDEN_DIGEST, "event content drifted");
    assert_eq!(trace.dropped(), 0);
}

#[test]
fn identical_runs_trace_identically() {
    let a = instrumented(pinned_scenario());
    let b = instrumented(pinned_scenario());
    let (ta, tb) = (a.trace().unwrap(), b.trace().unwrap());
    assert_eq!(ta.len(), tb.len());
    assert_eq!(ta.digest(), tb.digest());
    assert_eq!(ta.events(), tb.events());
    assert_eq!(a.telemetry(), b.telemetry());
}

#[test]
fn tracing_never_perturbs_the_report() {
    let dark = pinned_scenario().run(tiny_system()).unwrap();
    let lit = instrumented(pinned_scenario());
    assert_eq!(
        dark.json_object().render(),
        lit.report.json_object().render(),
        "tracing must be strictly observational"
    );
    assert_eq!(format!("{:?}", dark.serving), format!("{:?}", lit.report.serving));
}

// ---- well-formedness laws ------------------------------------------------

/// Per-request accounting of the event stream.
#[derive(Default)]
struct ReqTimeline {
    arrivals: usize,
    prefill_starts: usize,
    prefill_ends: usize,
    evictions: usize,
    drops: usize,
    completes: usize,
    first_s: f64,
    terminal_s: Option<f64>,
    last_s: f64,
}

fn timelines(events: &[TraceEvent]) -> BTreeMap<usize, ReqTimeline> {
    let mut map: BTreeMap<usize, ReqTimeline> = BTreeMap::new();
    for e in events {
        let Some(req) = e.req else { continue };
        let t = map.entry(req).or_insert_with(|| ReqTimeline { first_s: e.t_s, ..Default::default() });
        t.last_s = e.t_s;
        match e.kind {
            EventKind::Arrival { .. } => t.arrivals += 1,
            EventKind::PrefillStart { .. } => t.prefill_starts += 1,
            EventKind::PrefillEnd => t.prefill_ends += 1,
            EventKind::Evict { .. } => t.evictions += 1,
            EventKind::Drop => {
                t.drops += 1;
                t.terminal_s = Some(e.t_s);
            }
            EventKind::Complete => {
                t.completes += 1;
                t.terminal_s = Some(e.t_s);
            }
            _ => {}
        }
    }
    map
}

/// Asserts every law a reconstructable span timeline relies on.
fn assert_well_formed(trace: &Trace, injected: usize, completed: usize, dropped: usize) {
    let lines = timelines(trace.events());
    assert_eq!(trace.count("arrival"), injected, "one arrival per injected request");
    assert_eq!(trace.count("complete"), completed, "one complete per completed request");
    assert_eq!(trace.count("drop"), dropped, "one drop per dropped request");
    for (req, t) in &lines {
        assert_eq!(t.arrivals, 1, "req {req}: exactly one arrival");
        assert!(t.completes + t.drops <= 1, "req {req}: at most one terminal event");
        if let Some(term) = t.terminal_s {
            assert!(t.last_s <= term, "req {req}: no events after its terminal event");
        }
        assert!(t.prefill_ends <= t.prefill_starts, "req {req}: a prefill end needs a matching start");
        assert!(
            t.prefill_starts - t.prefill_ends <= t.evictions + t.drops,
            "req {req}: unmatched prefill starts only from evictions/drops"
        );
        if t.evictions == 0 && t.drops == 0 {
            assert_eq!(t.prefill_starts, t.prefill_ends, "req {req}: clean prefills close");
        }
    }
    // Events are globally time-ordered, so spans can be rebuilt by a
    // single forward pass.
    for pair in trace.events().windows(2) {
        assert!(pair[0].t_s <= pair[1].t_s, "events must be sorted by time");
    }
    for span in trace.request_spans() {
        assert!(span.end_s >= span.start_s, "span {}/{} runs forward", span.req, span.name);
        assert!(["queue", "prefill", "decode"].contains(&span.name), "closed phase taxonomy");
        let line = &lines[&span.req];
        assert!(span.start_s >= line.first_s - 1e-12, "span starts inside the request lifetime");
        assert!(span.end_s <= line.last_s + 1e-12, "span ends inside the request lifetime");
    }
}

#[test]
fn pinned_run_spans_are_well_formed() {
    let outcome = instrumented(pinned_scenario());
    let s = &outcome.report.serving;
    assert_well_formed(outcome.trace().unwrap(), s.injected, s.completed, s.dropped);
    assert!(outcome.trace().unwrap().count("fault") > 0, "the accelerated MTBF must fire");
}

proptest! {
    /// Span well-formedness holds on every sampled workload shape, not
    /// just the pinned one: open-loop rates from gentle to saturating,
    /// colocated and disaggregated, clean and faulty.
    #[test]
    fn sampled_runs_trace_well_formed_spans(
        seed in 0u64..1_000,
        rate in 150.0f64..900.0,
        n in 8usize..28,
        shape in 0u8..4,
    ) {
        let workload = timed(n, rate, seed);
        let scenario = match shape {
            0 => Scenario::colocated(2).router(routers::least_kv_load()),
            1 => Scenario::colocated(2).faults(FaultConfig::new(0.02, seed)),
            2 => Scenario::disaggregated(1, 1),
            _ => Scenario::disaggregated(2, 2).faults(FaultConfig::new(0.03, seed)),
        };
        let outcome = scenario.slo(slo()).workload(workload).trace(true).run_full(tiny_system()).unwrap();
        let trace = outcome.trace().unwrap();
        let s = &outcome.report.serving;
        assert_well_formed(trace, s.injected, s.completed, s.dropped);
        // Disaggregated runs pair every shipped migration start/arrive.
        if let Some(m) = &outcome.report.migration {
            prop_assert_eq!(trace.count("migrate_start"), m.migrations);
            prop_assert_eq!(trace.count("migrate_arrive"), m.migrations);
        }
    }
}

// ---- exporters and telemetry ---------------------------------------------

#[test]
fn chrome_trace_export_is_loadable_shaped() {
    let outcome = instrumented(pinned_scenario());
    let json = outcome.trace().unwrap().chrome_trace_json();
    let trimmed = json.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'), "a trace-event array");
    assert!(json.contains("\"ph\": \"M\""), "process-name metadata per wafer track");
    assert!(json.contains("\"ph\": \"X\""), "complete spans for request phases");
    assert!(json.contains("\"cat\": \"prefill\""));
    // Balanced braces — the hand-rolled emitter cannot truncate silently.
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "balanced object braces");
}

#[test]
fn trace_and_telemetry_rows_carry_their_schema_versions() {
    let outcome = instrumented(pinned_scenario());
    let trace = outcome.trace().unwrap();
    for row in trace.json_rows().iter().take(5) {
        assert!(row.render().starts_with(&format!("{{\"schema_version\": {TRACE_SCHEMA_VERSION}")));
    }
    let telemetry = outcome.telemetry();
    assert!(!telemetry.is_empty(), "the recorder must sample at the cadence");
    for s in telemetry {
        let row = s.json_object();
        assert!(row.render().starts_with(&format!("{{\"schema_version\": {TELEMETRY_SCHEMA_VERSION}")));
        assert!(s.gauges.kv_used_tokens <= s.gauges.kv_capacity_tokens);
        assert!(s.gauges.kv_blocks_shared <= s.gauges.kv_blocks_live);
    }
    // Counters are monotonic along the series, and samples land on the
    // cadence grid in (time, wafer) order.
    for pair in telemetry.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(b.t_s >= a.t_s);
        assert!(b.counters.completions >= a.counters.completions);
        assert!(b.counters.migrations >= a.counters.migrations);
        assert!(b.counters.faults >= a.counters.faults);
        assert!(b.counters.steps >= a.counters.steps);
    }
    let profile = outcome.profile().unwrap();
    assert!(profile.total_events() > 0);
    assert!(profile.events_per_s() > 0.0, "wall time accrues when profiling is armed");
}

#[test]
fn telemetry_tail_window_is_flushed_not_dropped() {
    // A cadence far beyond the run's duration used to record nothing:
    // the final partial window was silently dropped. The tail flush owes
    // exactly one closing sample per wafer, stamped at the run's end
    // instant (the same instant the report uses).
    let outcome = pinned_scenario().trace(true).telemetry_every(1e9).run_full(tiny_system()).unwrap();
    let telemetry = outcome.telemetry();
    let wafers = outcome.engines().len();
    assert_eq!(telemetry.len(), wafers, "one tail sample per wafer, nothing else");
    let end_s = outcome.report.serving.duration_s;
    for s in telemetry {
        assert!((s.t_s - end_s).abs() < 1e-12, "tail stamped at the run end, got {} vs {end_s}", s.t_s);
    }
    // The flush is still observational and deterministic.
    assert_eq!(
        outcome.report.json_object().render(),
        pinned_scenario().run(tiny_system()).unwrap().json_object().render()
    );
}

#[test]
fn telemetry_series_ends_at_the_run_end_and_stays_monotone() {
    let outcome = instrumented(pinned_scenario());
    let telemetry = outcome.telemetry();
    let last = telemetry.last().unwrap();
    let end_s = outcome.report.serving.duration_s;
    // The series now reaches the run's end instant: either the final
    // cadence point landed exactly there or the tail flush covered the
    // partial window.
    assert!(
        last.t_s <= end_s + 1e-12 && last.t_s > end_s - 0.005,
        "series must reach the run end (last {} vs end {end_s})",
        last.t_s
    );
    for pair in telemetry.windows(2) {
        assert!(pair[1].t_s >= pair[0].t_s, "tail flush must not break time order");
    }
}
