//! Workspace-wide invariants of runtime fault injection: determinism of the
//! whole fault realisation, and KV block conservation across every
//! replacement-chain remap (§4.3.3).

use ouroboros::model::zoo;
use ouroboros::serve::{routers, Admission, EngineConfig, FaultComparison, FaultConfig, Scenario, SloConfig};
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::workload::{ArrivalConfig, LengthConfig, TimedTrace, TraceGenerator};

fn tiny_system() -> OuroborosSystem {
    OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
}

fn slo() -> SloConfig {
    SloConfig { ttft_s: 0.5, tpot_s: 0.05 }
}

fn timed(n: usize, rate: f64, seed: u64) -> TimedTrace {
    let trace = TraceGenerator::new(seed).generate(&LengthConfig::fixed(96, 48), n);
    ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, seed)
}

/// Same seed ⇒ byte-identical `FaultReport` (and serving report) across two
/// independent runs: the entire fault realisation — arrival interleaving,
/// victim cores, chains, evictions, stalls — is a pure function of the
/// seeds.
#[test]
fn same_seed_produces_a_byte_identical_fault_report() {
    let sys = tiny_system();
    let t = timed(60, 400.0, 42);
    let scenario = |fault_seed: u64| {
        Scenario::colocated(3)
            .router(routers::least_kv_load())
            .slo(slo())
            .faults(FaultConfig::new(0.02, fault_seed))
            .workload(t.clone())
    };
    let report_a = scenario(42).run(&sys).unwrap();
    let report_b = scenario(42).run(&sys).unwrap();
    let faults_a = report_a.faults.as_ref().unwrap();
    assert!(faults_a.faults_injected > 0, "the 20ms MTBF must fire during this run");
    // Byte-identical: the Debug rendering captures every field, including
    // the exact f64 bit patterns of stalls and availability.
    assert_eq!(format!("{report_a:?}"), format!("{report_b:?}"));
    // Different fault seeds produce a different realisation.
    let report_c = scenario(43).run(&sys).unwrap();
    assert_ne!(format!("{faults_a:?}"), format!("{:?}", report_c.faults.as_ref().unwrap()));
}

/// KV block conservation after every remap: the manager's lifetime audit
/// (`allocated − freed == live`, i.e. allocated − freed − evicted ≡ live
/// with evictions counted inside `freed`) holds at every fault boundary,
/// not just at the end of the run.
#[test]
fn kv_blocks_are_conserved_after_every_remap() {
    let sys = tiny_system();
    let mut engine = ouroboros::serve::Engine::new(
        sys.stage_times().clone(),
        sys.serve_kv_config(),
        EngineConfig::default(),
    )
    .unwrap();
    for i in 0..24 {
        engine.submit_with(ouroboros::workload::Request::new(i, 96, 64), 0.0, Admission::Local, i, 0);
    }
    let mut faults_applied = 0;
    let mut step = 0u64;
    while engine.has_work() {
        engine.step();
        step += 1;
        if step.is_multiple_of(7) {
            // A fault every few iterations, walking the preferred core.
            if engine.apply_fault(engine.clock_s(), 0.5e-3, faults_applied, 0.01).is_some() {
                faults_applied += 1;
            }
            let audit = engine.kv_audit();
            assert!(
                audit.is_conserved(),
                "after remap {faults_applied}: allocated {} − freed {} != live {}",
                audit.allocated,
                audit.freed,
                audit.live
            );
        }
    }
    assert!(faults_applied > 0, "the loop must inject at least one fault");
    assert!(engine.stats().fault_evicted_seqs > 0, "faults under load must evict resident KV");
    let audit = engine.kv_audit();
    assert!(audit.is_conserved());
    assert_eq!(audit.live, 0, "a drained engine holds no live blocks");
    // Every request still completed or was dropped — faults lose no work.
    let done = engine.records().iter().filter(|r| r.completed()).count();
    assert_eq!(done + engine.stats().dropped as usize, 24);
}

/// The cluster-level composite: under a fault process the serving report
/// stays request-conserving, availability drops below 1, recompute happens,
/// and the clean run is strictly unaffected by constructing (but never
/// firing) the injector.
#[test]
fn fault_comparison_degrades_the_faulty_side_only() {
    let sys = tiny_system();
    let t = timed(50, 300.0, 7);
    let cmp = FaultComparison::measure(
        &sys,
        2,
        routers::join_shortest_queue(),
        EngineConfig::default(),
        &t,
        &slo(),
        f64::INFINITY,
        FaultConfig::new(0.02, 7),
    )
    .unwrap();
    assert!(cmp.clean.is_conserved());
    assert!(cmp.faulty.is_conserved());
    assert!(cmp.fault.faults_injected > 0);
    assert!(cmp.fault.availability < 1.0);
    assert!(cmp.fault.chains_built > 0);
    assert!(cmp.fault.mean_chain_len() >= 1.0);
    assert!(cmp.fault.kv_bytes_evicted >= cmp.fault.kv_tokens_evicted);
    assert!(
        cmp.ttft_p99_inflation() >= 1.0 || cmp.faulty.ttft.p99_s >= cmp.clean.ttft.p99_s * 0.99,
        "faults cannot make the tail faster: clean {} vs faulty {}",
        cmp.clean.ttft.p99_s,
        cmp.faulty.ttft.p99_s
    );
}
