//! Workspace-wide invariants of shared-prefix KV caching: the acceptance
//! claims of the prefix-cache tentpole, pinned on the fast test system.
//!
//! With shared system prompts (share ratio ≥ 0.5, same seed), the
//! prefix-cache-on run must show strictly lower mean TTFT and strictly
//! fewer prefilled tokens than the cache-off run, results must be
//! byte-identical per seed, and the refcount-aware block audit must stay
//! conserved after every release, eviction, and fault remap.

use ouroboros::model::zoo;
use ouroboros::serve::{routers, Admission, Engine, EngineConfig, Router, Scenario, SloConfig};
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::workload::{ArrivalConfig, Request, SessionConfig};

fn tiny_system() -> OuroborosSystem {
    OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
}

fn slo() -> SloConfig {
    SloConfig { ttft_s: 0.5, tpot_s: 0.05 }
}

fn session_timed(n: usize, share: f64, seed: u64) -> ouroboros::workload::TimedTrace {
    let cfg = SessionConfig {
        groups: 2,
        shared_prefix_tokens: 256,
        share_ratio: share,
        max_turns: 2,
        user_turn_tokens: 32,
        decode_tokens: 16,
    };
    let trace = cfg.generate(n, seed);
    ArrivalConfig::Poisson { rate_rps: 1_500.0 }.assign(&trace, seed)
}

/// The headline acceptance claim: at share ratio 0.7 on identical traffic,
/// cache-on beats cache-off on mean TTFT and prefilled tokens, and both
/// runs are reproducible byte-for-byte.
#[test]
fn prefix_cache_on_beats_off_at_half_sharing() {
    let sys = tiny_system();
    let t = session_timed(60, 0.7, 42);
    let run = |caching: bool, router: Box<dyn Router>| {
        let outcome = Scenario::colocated(2)
            .router(router)
            .prefix_caching(caching)
            .slo(slo())
            .workload(t.clone())
            .run_full(&sys)
            .unwrap();
        for e in outcome.engines() {
            let audit = e.kv_audit();
            assert!(audit.is_conserved());
            assert_eq!(audit.live, 0, "drained engines free shared chains too");
        }
        outcome.report.serving
    };
    let off = run(false, routers::least_kv_load());
    let on = run(true, routers::prefix_affinity());
    assert!(off.is_conserved() && on.is_conserved());
    assert!(
        on.ttft.mean_s < off.ttft.mean_s,
        "prefix caching must strictly cut mean TTFT: {} vs {}",
        on.ttft.mean_s,
        off.ttft.mean_s
    );
    assert!(
        on.prefilled_tokens < off.prefilled_tokens,
        "prefix caching must strictly cut prefilled tokens: {} vs {}",
        on.prefilled_tokens,
        off.prefilled_tokens
    );
    assert!(on.cached_prefix_tokens > 0);
    assert_eq!(off.cached_prefix_tokens, 0, "the ablation baseline never hits the cache");
    // Byte-identical per seed, for both configurations.
    assert_eq!(format!("{:?}", run(true, routers::prefix_affinity())), format!("{on:?}"));
    assert_eq!(format!("{:?}", run(false, routers::least_kv_load())), format!("{off:?}"));
}

/// Untagged traffic must be bit-identical whether the cache is on or off —
/// prefix caching is strictly additive.
#[test]
fn cold_traffic_is_unaffected_by_the_prefix_cache() {
    let sys = tiny_system();
    let t = session_timed(40, 0.0, 7);
    let run = |caching: bool| {
        Scenario::colocated(2)
            .router(routers::least_kv_load())
            .prefix_caching(caching)
            .slo(slo())
            .workload(t.clone())
            .run(&sys)
            .unwrap()
    };
    assert_eq!(run(true), run(false));
}

/// The refcount-aware audit holds at every fault boundary while shared
/// chains are live: faults that strike shared crossbars evict every sharer
/// and free each chain block exactly once.
#[test]
fn block_audit_survives_faults_on_shared_chains() {
    let sys = tiny_system();
    let mut engine =
        Engine::new(sys.stage_times().clone(), sys.serve_kv_config(), EngineConfig::default()).unwrap();
    for i in 0..16 {
        // All sequences share one 256-token system prompt.
        engine.submit_with(Request::new(i, 288, 24).with_shared_prefix(1, 256), 0.0, Admission::Local, i, 0);
    }
    let mut faults_applied = 0;
    let mut step = 0u64;
    while engine.has_work() {
        engine.step();
        step += 1;
        if step.is_multiple_of(5) {
            if engine.apply_fault(engine.clock_s(), 0.5e-3, faults_applied, 0.01).is_some() {
                faults_applied += 1;
            }
            let audit = engine.kv_audit();
            assert!(
                audit.is_conserved(),
                "after remap {faults_applied}: allocated {} − freed {} != live {} (shared {})",
                audit.allocated,
                audit.freed,
                audit.live,
                audit.shared_live
            );
        }
    }
    assert!(faults_applied > 0, "the loop must inject at least one fault");
    let audit = engine.kv_audit();
    assert!(audit.is_conserved());
    assert_eq!(audit.live, 0, "a drained engine holds no live blocks, shared or private");
    assert_eq!(audit.shared_live, 0);
    let done = engine.records().iter().filter(|r| r.completed()).count();
    assert_eq!(done + engine.stats().dropped as usize, 16, "faults lose no work");
}

/// Capacity evictions on sharers keep the audit conserved and the chain
/// refcounts exact: an overloaded cache thrashes sequences in and out while
/// their shared chain persists as long as any sharer is resident.
#[test]
fn evictions_of_sharers_keep_refcounts_exact() {
    let sys = tiny_system();
    let mut engine =
        Engine::new(sys.stage_times().clone(), sys.serve_kv_config(), EngineConfig::default()).unwrap();
    // Oversubscribe the tiny cache so the eviction path runs hot.
    for i in 0..30 {
        engine.submit_with(Request::new(i, 400, 120).with_shared_prefix(2, 384), 0.0, Admission::Local, i, 0);
    }
    while engine.has_work() {
        engine.step();
        let audit = engine.kv_audit();
        assert!(
            audit.is_conserved(),
            "mid-run: allocated {} − freed {} != live {} (shared {})",
            audit.allocated,
            audit.freed,
            audit.live,
            audit.shared_live
        );
    }
    let audit = engine.kv_audit();
    assert_eq!(audit.live, 0);
    assert_eq!(audit.shared_live, 0);
    let done = engine.records().iter().filter(|r| r.completed()).count();
    assert_eq!(done + engine.stats().dropped as usize, 30);
}
