//! Cross-crate integration tests: build complete Ouroboros systems through
//! the facade crate and check the paper's headline qualitative claims.

use ouroboros::baselines;
use ouroboros::model::zoo;
use ouroboros::sim::{ablation_ladder, OuroborosConfig, OuroborosSystem};
use ouroboros::workload::{LengthConfig, TraceGenerator};

fn small_trace(requests: usize) -> ouroboros::workload::Trace {
    TraceGenerator::new(11).generate(&LengthConfig::fixed(128, 256), requests)
}

#[test]
fn full_wafer_serves_llama_13b_faster_and_cheaper_than_dgx() {
    let model = zoo::llama_13b();
    let trace = small_trace(32);
    let ours = OuroborosSystem::new(OuroborosConfig::single_wafer(), &model)
        .expect("LLaMA-13B fits on one wafer")
        .simulate_labeled(&trace, "LP=128 LD=256");
    let dgx = baselines::dgx_a100(8).evaluate(&model, &trace, "LP=128 LD=256");
    assert!(
        ours.throughput_tokens_per_s > dgx.throughput_tokens_per_s,
        "Ouroboros ({:.0} tok/s) should beat the DGX ({:.0} tok/s)",
        ours.throughput_tokens_per_s,
        dgx.throughput_tokens_per_s
    );
    assert!(
        ours.energy_per_token_j() < dgx.energy_per_token_j(),
        "Ouroboros ({:.4} J) should use less energy per token than the DGX ({:.4} J)",
        ours.energy_per_token_j(),
        dgx.energy_per_token_j()
    );
    assert_eq!(ours.energy_per_token.off_chip_j, 0.0);
}

#[test]
fn ouroboros_beats_every_baseline_on_decode_heavy_13b() {
    let model = zoo::llama_13b();
    let trace = TraceGenerator::new(5).generate(&LengthConfig::fixed(128, 2048), 24);
    let ours = OuroborosSystem::new(OuroborosConfig::single_wafer(), &model)
        .unwrap()
        .simulate_labeled(&trace, "LP=128 LD=2048");
    for sys in [baselines::dgx_a100(8), baselines::tpu_v4(), baselines::attacc(), baselines::cerebras_wse2()]
    {
        let base = sys.evaluate(&model, &trace, "LP=128 LD=2048");
        assert!(
            ours.throughput_tokens_per_s > base.throughput_tokens_per_s,
            "expected to beat {} ({:.0} vs {:.0} tok/s)",
            base.system,
            ours.throughput_tokens_per_s,
            base.throughput_tokens_per_s
        );
        assert!(
            ours.energy_per_token_j() < base.energy_per_token_j(),
            "expected lower energy than {}",
            base.system
        );
    }
}

#[test]
fn llama_65b_needs_more_than_one_wafer() {
    let model = zoo::llama_65b();
    assert!(OuroborosSystem::new(OuroborosConfig::single_wafer(), &model).is_err());
    let two = OuroborosSystem::new(OuroborosConfig::multi_wafer(2), &model);
    assert!(two.is_ok(), "two wafers should hold LLaMA-65B");
    let trace = small_trace(8);
    let r = two.unwrap().simulate(&trace);
    assert!(r.throughput_tokens_per_s > 0.0);
}

#[test]
fn ablation_ladder_improves_monotonically_on_throughput_ends() {
    // The full system (last rung) must be strictly better than the chiplet
    // baseline (first rung) on both throughput and energy; intermediate rungs
    // each contribute, but we only pin the endpoints to avoid over-fitting
    // the analytical model.
    let model = zoo::bert_large();
    let base = OuroborosConfig::tiny_for_tests();
    let trace = TraceGenerator::new(9).generate(&LengthConfig::wikitext2_like(), 16);
    let ladder = ablation_ladder(&base);
    let first = OuroborosSystem::new(ladder.first().unwrap().1.clone(), &model).unwrap().simulate(&trace);
    let last = OuroborosSystem::new(ladder.last().unwrap().1.clone(), &model).unwrap().simulate(&trace);
    assert!(last.throughput_tokens_per_s > first.throughput_tokens_per_s);
    assert!(last.energy_per_token_j() < first.energy_per_token_j());
}

#[test]
fn encoder_models_run_with_blocked_tgp() {
    let trace = TraceGenerator::new(2).generate(&LengthConfig::fixed(256, 32), 16);
    for model in [zoo::bert_large(), zoo::t5_11b()] {
        let sys = OuroborosSystem::new(OuroborosConfig::single_wafer(), &model).unwrap();
        let r = sys.simulate_labeled(&trace, "encoder");
        assert!(r.throughput_tokens_per_s > 0.0, "{} should produce output", model.name);
        assert!(r.energy_per_token_j().is_finite());
    }
}

#[test]
fn kv_threshold_sweep_shows_rise_then_fall_shape() {
    // Fig. 17: throughput first improves (less thrashing) then degrades
    // (reserved capacity idles). We assert the weaker, robust property that
    // an extreme threshold is not better than every moderate one.
    let model = zoo::bert_large();
    let trace = TraceGenerator::new(4).generate(&LengthConfig::wikitext2_like(), 24);
    let mut throughputs = Vec::new();
    for threshold in [0.0, 0.2, 0.8] {
        let mut cfg = OuroborosConfig::tiny_for_tests();
        cfg.kv_threshold = threshold;
        let sys = OuroborosSystem::new(cfg, &model).unwrap();
        throughputs.push(sys.simulate(&trace).throughput_tokens_per_s);
    }
    let max = throughputs.iter().cloned().fold(f64::MIN, f64::max);
    assert!(throughputs[2] <= max + 1e-9, "an extreme threshold should not be uniquely best");
    assert!(throughputs.iter().all(|t| *t > 0.0));
}
