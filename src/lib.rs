//! # Ouroboros
//!
//! A reproduction of *"Ouroboros: Wafer-Scale SRAM CIM with Token-Grained
//! Pipelining for Large Language Model Inference"* (ASPLOS 2026) as a family
//! of Rust crates. This facade crate re-exports every sub-crate so that
//! downstream users can depend on a single package:
//!
//! * [`model`] — transformer/LLM architectural descriptions and cost counters,
//! * [`hw`] — the wafer / die / CIM-core / crossbar hardware model,
//! * [`noc`] — the network-on-wafer communication model,
//! * [`pipeline`] — sequence-grained, token-grained and blocked pipelines,
//! * [`kvcache`] — distributed dynamic KV-cache management,
//! * [`mapping`] — MIQP inter-core mapping, H-tree DP and fault tolerance,
//! * [`workload`] — request-trace and arrival-process generators for the
//!   evaluation workloads,
//! * [`baselines`] — analytical models of DGX A100, TPUv4, AttAcc, Cerebras,
//! * [`sim`] — the end-to-end Ouroboros simulator tying everything together,
//! * [`serve`] — the online serving simulator: open-loop arrivals,
//!   continuous batching, multi-wafer load balancing, SLO metrics, and
//!   runtime fault injection with replacement-chain healing,
//! * [`disagg`] — prefill/decode disaggregation: phase-specialised wafer
//!   pools, KV migration over the inter-wafer optical links, decode
//!   placement policies and the pool-ratio planner,
//! * [`trace`] — the observability layer: request-lifecycle trace events,
//!   sampled per-wafer telemetry, loop self-profiling, and the Chrome
//!   trace-event / JSON exporters (armed via [`serve::Scenario::trace`],
//!   zero-cost when off).
//!
//! # Quickstart
//!
//! ```
//! use ouroboros::model::zoo;
//! use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
//! use ouroboros::workload::{LengthConfig, TraceGenerator};
//!
//! let model = zoo::llama_13b();
//! let system = OuroborosSystem::new(OuroborosConfig::single_wafer(), &model)
//!     .expect("LLaMA-13B fits on one wafer");
//! let trace = TraceGenerator::new(7).generate(&LengthConfig::fixed(128, 128), 16);
//! let report = system.simulate(&trace);
//! assert!(report.throughput_tokens_per_s > 0.0);
//! ```
//!
//! # Online serving
//!
//! Every serving experiment — colocated or disaggregated, clean or
//! fault-injected, prefix-cached or cold — is one composable
//! [`serve::Scenario`] returning one [`serve::RunReport`]:
//!
//! ```
//! use ouroboros::model::zoo;
//! use ouroboros::serve::{routers, Scenario, SloConfig};
//! use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
//! use ouroboros::workload::{ArrivalConfig, LengthConfig, TraceGenerator};
//!
//! let system = OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap();
//! let trace = TraceGenerator::new(7).generate(&LengthConfig::fixed(64, 32), 32);
//! let timed = ArrivalConfig::Poisson { rate_rps: 100.0 }.assign(&trace, 7);
//! let report = Scenario::colocated(2)
//!     .router(routers::least_kv_load())
//!     .slo(SloConfig { ttft_s: 0.5, tpot_s: 0.05 })
//!     .workload(timed)
//!     .run(&system)
//!     .unwrap();
//! assert_eq!(report.serving.completed, 32);
//! assert!(report.is_conserved());
//! ```

pub use ouro_baselines as baselines;
pub use ouro_disagg as disagg;
pub use ouro_hw as hw;
pub use ouro_kvcache as kvcache;
pub use ouro_mapping as mapping;
pub use ouro_model as model;
pub use ouro_noc as noc;
pub use ouro_pipeline as pipeline;
pub use ouro_serve as serve;
pub use ouro_sim as sim;
pub use ouro_trace as trace;
pub use ouro_workload as workload;
